"""The cross-system test harness of §8.1.

For every (plan, format, input) triple the harness provisions a fresh
deployment — one shared metastore + filesystem, one Spark session, one
Hive server — creates a single-column table through the *writer*
interface, inserts the input, reads it back through the *reader*
interface, and records the outcome. Oracles and classification operate
on the recorded trials afterwards; nothing in the harness knows about
the 15 expected discrepancies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.result import QueryResult
from repro.common.schema import Field, Schema
from repro.crosstest.plans import ALL_PLANS, FORMATS, Interface, Plan
from repro.crosstest.values import TestInput, generate_inputs
from repro.hivelite.engine import HiveServer
from repro.hivelite.metastore import HiveMetastore
from repro.sparklite.conf import SparkConf
from repro.sparklite.session import SparkSession
from repro.storage.filesystem import FileSystem
from repro.storage.namenode import NameNode
from repro.tracing.core import span as trace_span

__all__ = [
    "Outcome",
    "Trial",
    "Deployment",
    "CrossTester",
    "NO_ROWS",
    "TRIAL_TABLE",
    "run_trial_on",
]

#: The table name every trial creates, writes, and reads.
TRIAL_TABLE = "ct"


class _NoRows:
    """Sentinel for "the read returned zero rows" (distinct from NULL).

    A real singleton (not a bare ``object()``) so that identity survives
    pickling — trials cross process boundaries in the parallel executor
    and ``outcome.value is NO_ROWS`` must keep working on the far side.
    """

    _instance: "_NoRows | None" = None

    def __new__(cls) -> "_NoRows":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NO_ROWS"

    def __reduce__(self):
        return (_NoRows, ())


NO_ROWS = _NoRows()


@dataclass(frozen=True)
class Outcome:
    """What one trial observed."""

    status: str  # "ok" or "error"
    stage: str = ""  # create | write | read (set when status == "error")
    error_type: str = ""
    error_message: str = ""
    value: object = None
    value_type: str = ""
    column_name: str = ""
    row_count: int = 0
    warnings: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class Trial:
    plan: Plan
    fmt: str
    test_input: TestInput
    outcome: Outcome


@dataclass
class Deployment:
    """One co-deployment of Spark and Hive over shared state."""

    conf_overrides: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        metastore = HiveMetastore()
        filesystem = FileSystem(NameNode())
        conf = SparkConf()
        for key, value in self.conf_overrides.items():
            conf.set(key, value, source="deployment")
        self.metastore = metastore
        self.filesystem = filesystem
        self.spark = SparkSession(metastore, filesystem, conf)
        self.hive = HiveServer(
            metastore, filesystem, plan_cache_enabled=conf.plan_cache_enabled
        )

    def reset(self, table: str = TRIAL_TABLE) -> None:
        """Return the deployment to its pre-trial state.

        Drops the trial table from the shared metastore and deletes its
        data directory, so the deployment can be leased to the next
        trial exactly as a fresh one would behave (the session conf is
        never mutated by trials — the SQL subset has no SET statement).
        """
        self.metastore.drop_table(table, if_exists=True)
        location = self.metastore.table_location("default", table)
        if self.filesystem.exists(location):
            self.filesystem.delete(location, recursive=True)

    # -- per-interface operations -------------------------------------

    def create_table(
        self, interface: str, table: str, test_input: TestInput, fmt: str
    ) -> None:
        ddl = f"CREATE TABLE {table} (c {test_input.type_text}) STORED AS {fmt}"
        if interface == Interface.SPARKSQL:
            self.spark.sql(ddl)
        elif interface == Interface.HIVEQL:
            self.hive.execute(ddl)
        elif interface == Interface.DATAFRAME:
            # the DataFrame path creates the table while saving; nothing
            # to do here (datasource table semantics).
            pass
        else:
            raise ValueError(f"unknown interface {interface!r}")

    def write(
        self, interface: str, table: str, test_input: TestInput, fmt: str
    ) -> None:
        if interface == Interface.DATAFRAME:
            schema = Schema(
                (Field("c", test_input.column_type),), case_sensitive=True
            )
            frame = self.spark.create_dataframe(
                [(test_input.py_value,)], schema
            )
            frame.write.format(fmt).save_as_table(table)
            return
        dml = f"INSERT INTO {table} VALUES ({test_input.sql_literal})"
        if interface == Interface.SPARKSQL:
            self.spark.sql(dml)
        elif interface == Interface.HIVEQL:
            self.hive.execute(dml)
        else:
            raise ValueError(f"unknown interface {interface!r}")

    def read(self, interface: str, table: str) -> QueryResult:
        if interface == Interface.SPARKSQL:
            return self.spark.sql(f"SELECT * FROM {table}")
        if interface == Interface.DATAFRAME:
            return self.spark.read_table(table, interface="dataframe")
        if interface == Interface.HIVEQL:
            return self.hive.execute(f"SELECT * FROM {table}")
        raise ValueError(f"unknown interface {interface!r}")


class CrossTester:
    """Drive the full (plans × formats × inputs) matrix."""

    def __init__(
        self,
        inputs: list[TestInput] | None = None,
        plans: tuple[Plan, ...] = ALL_PLANS,
        formats: tuple[str, ...] = FORMATS,
        conf_overrides: dict[str, object] | None = None,
    ) -> None:
        from repro.formats import validate_formats

        self.inputs = inputs if inputs is not None else generate_inputs()
        self.plans = plans
        self.formats = validate_formats(formats)
        self.conf_overrides = dict(conf_overrides or {})

    def run(
        self,
        jobs: int = 1,
        pool: str = "auto",
        metrics=None,
        progress=None,
        trace_sink=None,
        fault_plan=None,
        fault_seed: int = 0,
        injection_sink=None,
    ) -> list[Trial]:
        """Run the full matrix.

        ``jobs=1`` (the default) preserves the original fully sequential
        semantics; ``jobs>1`` or ``jobs=None`` (auto-size) shards the
        matrix onto a worker pool — see :mod:`repro.crosstest.executor`.
        Trial ordering is identical either way. ``trace_sink`` (a dict)
        switches per-trial boundary tracing on; it fills with
        ``{trial index: finished spans}``. ``fault_plan``/``fault_seed``
        switch deterministic fault injection on, with fired injections
        reported through ``injection_sink`` the same way.
        """
        from repro.crosstest.executor import execute

        return execute(
            self.plans,
            self.formats,
            self.inputs,
            self.conf_overrides,
            jobs=jobs,
            pool=pool,
            metrics=metrics,
            progress=progress,
            trace_sink=trace_sink,
            fault_plan=fault_plan,
            fault_seed=fault_seed,
            injection_sink=injection_sink,
        )

    def run_trial(self, plan: Plan, fmt: str, test_input: TestInput) -> Trial:
        """Run one trial against this tester's pooled deployments.

        The deployment is leased from the executor's worker-global pool
        (and reset on release) instead of being built and thrown away —
        so ad-hoc single trials share warm plan caches with full runs.
        """
        from repro.crosstest.executor import worker_pool

        pool = worker_pool(self.conf_overrides)
        deployment = pool.lease()
        try:
            return run_trial_on(deployment, plan, fmt, test_input)
        finally:
            pool.release(deployment)


def run_trial_on(
    deployment: Deployment, plan: Plan, fmt: str, test_input: TestInput
) -> Trial:
    """Drive one trial against an already-provisioned deployment.

    With a tracer active, the trial becomes a span tree: one root span,
    one child per stage, and whatever boundary spans the engines emit
    underneath (metastore registrations, SerDe encode/decode, warehouse
    reads/writes). With tracing off (the default) the ``with`` blocks
    are shared no-ops.
    """
    table = TRIAL_TABLE
    with trace_span(
        "crosstest.trial", system="crosstest", operation="trial"
    ) as root:
        if root is not None:
            root.attributes.update(
                plan=plan.name,
                writer=plan.writer,
                reader=plan.reader,
                fmt=fmt,
                input_id=test_input.input_id,
                type=test_input.type_text,
            )
        try:
            with trace_span(
                "crosstest.create", system="crosstest", operation="create"
            ):
                deployment.create_table(plan.writer, table, test_input, fmt)
        except Exception as exc:  # noqa: BLE001 - any failure is data
            return Trial(plan, fmt, test_input, _error("create", exc))
        try:
            with trace_span(
                "crosstest.write", system="crosstest", operation="write"
            ):
                deployment.write(plan.writer, table, test_input, fmt)
        except Exception as exc:  # noqa: BLE001
            return Trial(plan, fmt, test_input, _error("write", exc))
        try:
            with trace_span(
                "crosstest.read", system="crosstest", operation="read"
            ):
                result = deployment.read(plan.reader, table)
        except Exception as exc:  # noqa: BLE001
            return Trial(plan, fmt, test_input, _error("read", exc))
        return Trial(plan, fmt, test_input, _ok(result))


def _error(stage: str, exc: Exception) -> Outcome:
    return Outcome(
        status="error",
        stage=stage,
        error_type=type(exc).__name__,
        error_message=str(exc),
    )


def _ok(result: QueryResult) -> Outcome:
    if len(result.schema) > 0:
        column = result.schema.fields[0]
        value_type = column.data_type.simple_string()
        name = column.name
    else:
        value_type = ""
        name = ""
    value = result.rows[0][0] if result.rows else NO_ROWS
    return Outcome(
        status="ok",
        value=value,
        value_type=value_type,
        column_name=name,
        row_count=len(result.rows),
        warnings=result.warnings,
    )
