"""The cross-system test harness of §8.1.

For every (plan, format, input) triple the harness provisions a fresh
deployment — one shared metastore + filesystem, one Spark session, one
Hive server — creates a single-column table through the *writer*
interface, inserts the input, reads it back through the *reader*
interface, and records the outcome. Oracles and classification operate
on the recorded trials afterwards; nothing in the harness knows about
the 15 expected discrepancies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.common.result import QueryResult
from repro.common.schema import Field, Schema
from repro.crosstest.plans import ALL_PLANS, FORMATS, Interface, Plan
from repro.crosstest.values import TestInput, generate_inputs
from repro.hivelite.engine import HiveServer
from repro.hivelite.metastore import HiveMetastore
from repro.sparklite.conf import SparkConf
from repro.sparklite.session import SparkSession
from repro.storage.filesystem import FileSystem
from repro.storage.namenode import NameNode
from repro.tracing.core import span as trace_span

__all__ = [
    "Outcome",
    "Trial",
    "Deployment",
    "CrossTester",
    "NO_ROWS",
    "TRIAL_TABLE",
    "run_trial_on",
    "run_lane_on",
]

#: The table name every trial creates, writes, and reads.
TRIAL_TABLE = "ct"


class _NoRows:
    """Sentinel for "the read returned zero rows" (distinct from NULL).

    A real singleton (not a bare ``object()``) so that identity survives
    pickling — trials cross process boundaries in the parallel executor
    and ``outcome.value is NO_ROWS`` must keep working on the far side.
    """

    _instance: "_NoRows | None" = None

    def __new__(cls) -> "_NoRows":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NO_ROWS"

    def __reduce__(self):
        return (_NoRows, ())


NO_ROWS = _NoRows()


@dataclass(frozen=True)
class Outcome:
    """What one trial observed."""

    status: str  # "ok" or "error"
    stage: str = ""  # create | write | read (set when status == "error")
    error_type: str = ""
    error_message: str = ""
    value: object = None
    value_type: str = ""
    column_name: str = ""
    row_count: int = 0
    warnings: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class Trial:
    plan: Plan
    fmt: str
    test_input: TestInput
    outcome: Outcome


@dataclass
class Deployment:
    """One co-deployment of Spark and Hive over shared state."""

    conf_overrides: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        metastore = HiveMetastore()
        filesystem = FileSystem(NameNode())
        conf = SparkConf()
        for key, value in self.conf_overrides.items():
            conf.set(key, value, source="deployment")
        self.metastore = metastore
        self.filesystem = filesystem
        self.spark = SparkSession(metastore, filesystem, conf)
        self.hive = HiveServer(
            metastore, filesystem, plan_cache_enabled=conf.plan_cache_enabled
        )

    def reset(self, table: str = TRIAL_TABLE) -> None:
        """Return the deployment to its pre-trial state.

        Drops the trial table from the shared metastore and deletes its
        data directory, so the deployment can be leased to the next
        trial exactly as a fresh one would behave (the session conf is
        never mutated by trials — the SQL subset has no SET statement).
        """
        self.metastore.drop_table(table, if_exists=True)
        location = self.metastore.table_location("default", table)
        if self.filesystem.exists(location):
            self.filesystem.delete(location, recursive=True)

    # -- per-interface operations -------------------------------------

    def create_table(
        self, interface: str, table: str, test_input: TestInput, fmt: str
    ) -> None:
        ddl = f"CREATE TABLE {table} (c {test_input.type_text}) STORED AS {fmt}"
        if interface == Interface.SPARKSQL:
            self.spark.sql(ddl)
        elif interface == Interface.HIVEQL:
            self.hive.execute(ddl)
        elif interface == Interface.DATAFRAME:
            # the DataFrame path creates the table while saving; nothing
            # to do here (datasource table semantics).
            pass
        else:
            raise ValueError(f"unknown interface {interface!r}")

    def write(
        self, interface: str, table: str, test_input: TestInput, fmt: str
    ) -> None:
        if interface == Interface.DATAFRAME:
            schema = Schema(
                (Field("c", test_input.column_type),), case_sensitive=True
            )
            frame = self.spark.create_dataframe(
                [(test_input.py_value,)], schema
            )
            frame.write.format(fmt).save_as_table(table)
            return
        dml = f"INSERT INTO {table} VALUES ({test_input.sql_literal})"
        if interface == Interface.SPARKSQL:
            self.spark.sql(dml)
        elif interface == Interface.HIVEQL:
            self.hive.execute(dml)
        else:
            raise ValueError(f"unknown interface {interface!r}")

    def write_rows(
        self,
        interface: str,
        table: str,
        batch: tuple[TestInput, ...],
        fmt: str,
    ) -> None:
        """Write several same-type inputs through one statement.

        The batched counterpart of :meth:`write`: one multi-row
        ``INSERT INTO .. VALUES (a), (b), ..`` for the SQL interfaces,
        one multi-row frame for the DataFrame interface. Row order is
        preserved — lane demultiplexing depends on it.
        """
        if interface == Interface.DATAFRAME:
            schema = Schema(
                (Field("c", batch[0].column_type),), case_sensitive=True
            )
            frame = self.spark.create_dataframe(
                [(test_input.py_value,) for test_input in batch], schema
            )
            frame.write.format(fmt).save_as_table(table)
            return
        values = ", ".join(
            f"({test_input.sql_literal})" for test_input in batch
        )
        dml = f"INSERT INTO {table} VALUES {values}"
        if interface == Interface.SPARKSQL:
            self.spark.sql(dml)
        elif interface == Interface.HIVEQL:
            self.hive.execute(dml)
        else:
            raise ValueError(f"unknown interface {interface!r}")

    def read(self, interface: str, table: str) -> QueryResult:
        if interface == Interface.SPARKSQL:
            return self.spark.sql(f"SELECT * FROM {table}")
        if interface == Interface.DATAFRAME:
            return self.spark.read_table(table, interface="dataframe")
        if interface == Interface.HIVEQL:
            return self.hive.execute(f"SELECT * FROM {table}")
        raise ValueError(f"unknown interface {interface!r}")


class CrossTester:
    """Drive the full (plans × formats × inputs) matrix."""

    def __init__(
        self,
        inputs: list[TestInput] | None = None,
        plans: tuple[Plan, ...] = ALL_PLANS,
        formats: tuple[str, ...] = FORMATS,
        conf_overrides: dict[str, object] | None = None,
    ) -> None:
        from repro.formats import validate_formats

        self.inputs = inputs if inputs is not None else generate_inputs()
        self.plans = plans
        self.formats = validate_formats(formats)
        self.conf_overrides = dict(conf_overrides or {})

    def run(
        self,
        jobs: int = 1,
        pool: str = "auto",
        metrics=None,
        progress=None,
        trace_sink=None,
        fault_plan=None,
        fault_seed: int = 0,
        injection_sink=None,
        batch: bool = True,
    ) -> list[Trial]:
        """Run the full matrix.

        ``jobs=1`` (the default) preserves the original fully sequential
        semantics; ``jobs>1`` or ``jobs=None`` (auto-size) shards the
        matrix onto a worker pool — see :mod:`repro.crosstest.executor`.
        Trial ordering is identical either way. ``trace_sink`` (a dict)
        switches per-trial boundary tracing on; it fills with
        ``{trial index: finished spans}``. ``fault_plan``/``fault_seed``
        switch deterministic fault injection on, with fired injections
        reported through ``injection_sink`` the same way. ``batch``
        allows same-type trials to share deployment lanes (automatically
        bypassed while tracing or injecting faults — see
        :func:`repro.crosstest.executor.run_shard`).
        """
        from repro.crosstest.executor import execute

        return execute(
            self.plans,
            self.formats,
            self.inputs,
            self.conf_overrides,
            jobs=jobs,
            pool=pool,
            metrics=metrics,
            progress=progress,
            trace_sink=trace_sink,
            fault_plan=fault_plan,
            fault_seed=fault_seed,
            injection_sink=injection_sink,
            batch=batch,
        )

    def run_trial(self, plan: Plan, fmt: str, test_input: TestInput) -> Trial:
        """Run one trial against this tester's pooled deployments.

        The deployment is leased from the executor's worker-global pool
        (and reset on release) instead of being built and thrown away —
        so ad-hoc single trials share warm plan caches with full runs.
        """
        from repro.crosstest.executor import worker_pool

        pool = worker_pool(self.conf_overrides)
        deployment = pool.lease()
        try:
            return run_trial_on(deployment, plan, fmt, test_input)
        finally:
            pool.release(deployment)


def run_trial_on(
    deployment: Deployment,
    plan: Plan,
    fmt: str,
    test_input: TestInput,
    stage_times: list[tuple[str, float]] | None = None,
) -> Trial:
    """Drive one trial against an already-provisioned deployment.

    With a tracer active, the trial becomes a span tree: one root span,
    one child per stage, and whatever boundary spans the engines emit
    underneath (metastore registrations, SerDe encode/decode, warehouse
    reads/writes). With tracing off (the default) the ``with`` blocks
    are shared no-ops.

    ``stage_times`` (when given) collects ``(stage, seconds)`` samples
    for the per-stage latency histograms; a stage that raised still
    records the time spent failing.
    """
    table = TRIAL_TABLE
    clock = time.perf_counter
    with trace_span(
        "crosstest.trial", system="crosstest", operation="trial"
    ) as root:
        if root is not None:
            root.attributes.update(
                plan=plan.name,
                writer=plan.writer,
                reader=plan.reader,
                fmt=fmt,
                input_id=test_input.input_id,
                type=test_input.type_text,
            )
        started = clock() if stage_times is not None else 0.0
        try:
            with trace_span(
                "crosstest.create", system="crosstest", operation="create"
            ):
                deployment.create_table(plan.writer, table, test_input, fmt)
        except Exception as exc:  # noqa: BLE001 - any failure is data
            return Trial(plan, fmt, test_input, _error("create", exc))
        finally:
            if stage_times is not None:
                stage_times.append(("create", clock() - started))
        started = clock() if stage_times is not None else 0.0
        try:
            with trace_span(
                "crosstest.write", system="crosstest", operation="write"
            ):
                deployment.write(plan.writer, table, test_input, fmt)
        except Exception as exc:  # noqa: BLE001
            return Trial(plan, fmt, test_input, _error("write", exc))
        finally:
            if stage_times is not None:
                stage_times.append(("write", clock() - started))
        started = clock() if stage_times is not None else 0.0
        try:
            with trace_span(
                "crosstest.read", system="crosstest", operation="read"
            ):
                result = deployment.read(plan.reader, table)
        except Exception as exc:  # noqa: BLE001
            return Trial(plan, fmt, test_input, _error("read", exc))
        finally:
            if stage_times is not None:
                stage_times.append(("read", clock() - started))
        return Trial(plan, fmt, test_input, _ok(result))


def run_lane_on(
    deployment: Deployment,
    plan: Plan,
    fmt: str,
    inputs: tuple[TestInput, ...],
    multirow: bool = True,
    stage_times: list[tuple[str, float]] | None = None,
) -> list[Outcome] | str:
    """Run a lane of same-type inputs through one shared table.

    The batched counterpart of :func:`run_trial_on`: one ``CREATE
    TABLE`` (every input in the lane shares a ``type_text``, so the DDL
    is identical), all writes into the same table, one ``SELECT *``
    scan, then rows demultiplexed back into per-input :class:`Outcome`s
    by insertion order — the warehouse assigns part files in write
    order and the scan reads them sorted, so the k-th surviving row is
    the k-th successful write.

    Returns the *stage name* of the ambiguity (instead of outcomes)
    whenever per-input attribution would be a guess rather than an
    observation, so the caller can pick the right fallback:

    - ``"write"`` — a *multi-row* statement raised; which row poisoned
      it is unknowable from here, but single-row statements attribute
      exactly, so the caller retries with ``multirow=False``,
    - ``"read"`` — the shared scan raised; an isolated read might
      succeed for some inputs and fail for others (e.g. one poison row
      breaking the scan), and no smaller shared table can settle that —
      only the isolated path can,
    - ``"count"`` — the scan returned a row count that matches neither
      zero nor the number of successful writes (some rows silently
      dropped); which writes lost their row is likewise only
      observable in isolation.

    Resolvable observations are handled in-lane: a ``create`` failure
    is deterministic across the lane (same DDL, fresh deployment) and
    is replicated to every input; a *single-row* write failure is that
    input's write error; an empty scan over successful writes is the
    row-dropping behaviour the isolated path records as ``NO_ROWS``.

    ``multirow=True`` additionally merges every corpus-``valid`` input
    in the lane into one leading multi-row statement (see
    :func:`_write_batches` for why statement order is free); the flag
    is a grouping heuristic only — correctness never depends on it,
    since any multi-row failure falls back to single-row writes.
    """
    table = TRIAL_TABLE
    clock = time.perf_counter
    total = len(inputs)

    started = clock()
    try:
        deployment.create_table(plan.writer, table, inputs[0], fmt)
    except Exception as exc:  # noqa: BLE001 - any failure is data
        if stage_times is not None:
            stage_times.append(("create", clock() - started))
        return [_error("create", exc)] * total
    if stage_times is not None:
        stage_times.append(("create", clock() - started))

    outcomes: list[Outcome | None] = [None] * total
    ok_positions: list[int] = []
    started = clock()
    optimistic = plan.writer != Interface.SPARKSQL
    for positions in _write_batches(inputs, multirow, optimistic):
        batch = tuple(inputs[position] for position in positions)
        try:
            if len(batch) == 1:
                deployment.write(plan.writer, table, batch[0], fmt)
            else:
                deployment.write_rows(plan.writer, table, batch, fmt)
        except Exception as exc:  # noqa: BLE001
            if len(batch) > 1:
                if stage_times is not None:
                    stage_times.append(("write", clock() - started))
                return "write"
            outcomes[positions[0]] = _error("write", exc)
        else:
            ok_positions.extend(positions)
    if stage_times is not None:
        stage_times.append(("write", clock() - started))

    if ok_positions:
        started = clock()
        try:
            result = deployment.read(plan.reader, table)
        except Exception:  # noqa: BLE001
            if stage_times is not None:
                stage_times.append(("read", clock() - started))
            return "read"
        if stage_times is not None:
            stage_times.append(("read", clock() - started))
        rows = result.rows
        if rows and len(rows) != len(ok_positions):
            return "count"
        if len(result.schema) > 0:
            column = result.schema.fields[0]
            value_type = column.data_type.simple_string()
            name = column.name
        else:
            value_type = ""
            name = ""
        if not rows:
            empty = Outcome(
                status="ok",
                value=NO_ROWS,
                value_type=value_type,
                column_name=name,
                row_count=0,
                warnings=result.warnings,
            )
            for position in ok_positions:
                outcomes[position] = empty
        else:
            for row, position in zip(rows, ok_positions):
                outcomes[position] = Outcome(
                    status="ok",
                    value=row[0],
                    value_type=value_type,
                    column_name=name,
                    row_count=1,
                    warnings=result.warnings,
                )
    return outcomes  # type: ignore[return-value]


def _write_batches(
    inputs: tuple[TestInput, ...], multirow: bool, optimistic: bool
) -> list[list[int]]:
    """Group lane positions into write statements.

    ``optimistic`` lanes (DataFrame and HiveQL writers, which coerce
    rather than reject bad values — across the whole corpus they raise
    on a handful of writes where strict-ANSI SparkSQL raises on
    thousands) put *every* input into one multi-row write. SparkSQL
    lanes put only the corpus-``valid`` inputs into the multi-row write
    (first, preserving their relative order); each predicted-to-fail
    input gets a single-row write so write errors keep exact per-input
    attribution. Statement *order* is free to differ from position
    order: demux follows the execution order of successful writes (the
    warehouse reads part files back in write order), and writes are
    row-independent — a failing single writes nothing and observes
    nothing the multi-row statement changed.

    Both groupings are predictions of which writes succeed, never
    correctness assumptions: any multi-row statement that fails falls
    back to single rows (the ``"write"`` rung of the ladder), and an
    "invalid" single that succeeds simply joins the demux in its write
    order.
    """
    total = len(inputs)
    if not multirow or total == 1:
        return [[position] for position in range(total)]
    if optimistic:
        return [list(range(total))]
    valid = [
        position
        for position, test_input in enumerate(inputs)
        if test_input.valid
    ]
    if len(valid) < 2:
        return [[position] for position in range(total)]
    batches = [valid]
    batches.extend(
        [position]
        for position, test_input in enumerate(inputs)
        if not test_input.valid
    )
    return batches


def _error(stage: str, exc: Exception) -> Outcome:
    return Outcome(
        status="error",
        stage=stage,
        error_type=type(exc).__name__,
        error_message=str(exc),
    )


def _ok(result: QueryResult) -> Outcome:
    if len(result.schema) > 0:
        column = result.schema.fields[0]
        value_type = column.data_type.simple_string()
        name = column.name
    else:
        value_type = ""
        name = ""
    value = result.rows[0][0] if result.rows else NO_ROWS
    return Outcome(
        status="ok",
        value=value,
        value_type=value_type,
        column_name=name,
        row_count=len(result.rows),
        warnings=result.warnings,
    )
