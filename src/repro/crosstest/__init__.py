"""The §8 cross-system testing tool for the Spark–Hive data plane."""

from repro.crosstest.catalog import (
    CATALOG,
    CATEGORY_MEMBERS,
    Category,
    Discrepancy,
    by_number,
    category_counts,
)
from repro.crosstest.classify import Evidence, classify_trials, found_discrepancies
from repro.crosstest.harness import NO_ROWS, CrossTester, Deployment, Outcome, Trial
from repro.crosstest.oracles import (
    OracleFailure,
    all_failures,
    difft_failures,
    eh_failures,
    signature,
    wr_failures,
)
from repro.crosstest.plans import (
    ALL_PLANS,
    FORMATS,
    HIVE_TO_SPARK,
    SPARK_E2E,
    SPARK_TO_HIVE,
    Interface,
    Plan,
    plans_in_group,
)
from repro.crosstest.report import CrossTestReport, run_crosstest
from repro.crosstest.values import (
    INVALID_COUNT,
    VALID_COUNT,
    TestInput,
    generate_inputs,
)

__all__ = [
    "CATALOG",
    "CATEGORY_MEMBERS",
    "Category",
    "Discrepancy",
    "by_number",
    "category_counts",
    "Evidence",
    "classify_trials",
    "found_discrepancies",
    "NO_ROWS",
    "CrossTester",
    "Deployment",
    "Outcome",
    "Trial",
    "OracleFailure",
    "all_failures",
    "difft_failures",
    "eh_failures",
    "signature",
    "wr_failures",
    "ALL_PLANS",
    "FORMATS",
    "HIVE_TO_SPARK",
    "SPARK_E2E",
    "SPARK_TO_HIVE",
    "Interface",
    "Plan",
    "plans_in_group",
    "CrossTestReport",
    "run_crosstest",
    "INVALID_COUNT",
    "VALID_COUNT",
    "TestInput",
    "generate_inputs",
]
