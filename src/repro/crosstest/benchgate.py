"""Bench-regression gate for the §8 trial matrix.

``python -m repro.crosstest.benchgate FRESH.json`` compares a freshly
measured benchmark document (``repro.crosstest.bench`` output) against
the committed ``BENCH_crosstest.json`` and fails when the sequential
(``jobs=1``) wall-clock regressed beyond the threshold. CI runs it so a
PR cannot silently slow the hot path — the fault hooks in particular
are a one-int check when no injector is active, and this gate is what
holds them to that.

The gate also holds the parallel layer to its one-line promise: on a
host where the pool workers can actually run concurrently (the fresh
``parallel`` section is present, ran at ``jobs >= 2``, and is not
flagged ``degenerate``), ``jobs1.best_s / parallel.best_s`` must reach
``--min-parallel-speedup`` (default 1.0 — parallel at least must not
*lose* to sequential). Degenerate hosts (fewer cores than workers)
skip the speedup comparison but still must *have* a well-formed
parallel section: a fresh document missing it fails loudly instead of
passing silently.

The batched-lane layer is gated the same way: a fresh document must
carry a well-formed ``jobs1_batch`` section, and its
``jobs1.best_s / jobs1_batch.best_s`` ratio must reach
``--min-batch-speedup`` (default 1.0 — lanes must at least not lose to
isolated execution; CI pins a higher bar). Both legs come from the
same fresh run, so the ratio is host-independent in a way a cross-run
comparison would not be; the *baseline* document may predate the batch
leg and is not required to carry one.

The gate compares ``best_s`` (best-of-N, warm) rather than ``cold_s``:
cold numbers fold in import time and first-touch cache fills, which
vary with runner provisioning far more than the code under test does.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_THRESHOLD",
    "DEFAULT_MIN_PARALLEL_SPEEDUP",
    "DEFAULT_MIN_BATCH_SPEEDUP",
    "GateError",
    "check",
    "main",
]

DEFAULT_BASELINE = "BENCH_crosstest.json"

#: allowed fractional slowdown of jobs=1 best_s before the gate fails
DEFAULT_THRESHOLD = 0.25

#: required jobs1/parallel wall-clock ratio on non-degenerate hosts
DEFAULT_MIN_PARALLEL_SPEEDUP = 1.0

#: required jobs1/jobs1_batch wall-clock ratio (lanes on vs off)
DEFAULT_MIN_BATCH_SPEEDUP = 1.0


class GateError(ValueError):
    """A benchmark document is missing the fields the gate compares."""


def _jobs1_best(document: dict, label: str) -> float:
    try:
        best = document["jobs1"]["best_s"]
    except (KeyError, TypeError) as exc:
        raise GateError(f"{label}: missing jobs1.best_s") from exc
    if not isinstance(best, (int, float)) or best <= 0:
        raise GateError(f"{label}: bad jobs1.best_s {best!r}")
    return float(best)


def _parallel_section(document: dict, label: str) -> dict:
    """The document's parallel leg, validated.

    Current documents call it ``parallel``; pre-PR-6 documents called
    it ``jobs_auto`` (and carried no ``degenerate`` flag — their
    recorded ``jobs`` tells the story). Either way the section must be
    a mapping with a positive ``best_s`` and a ``jobs`` count — absence
    or malformation is a loud ``GateError``, never a silent pass.
    """
    section = document.get("parallel", document.get("jobs_auto"))
    if not isinstance(section, dict):
        raise GateError(f"{label}: missing parallel section")
    best = section.get("best_s")
    if not isinstance(best, (int, float)) or best <= 0:
        raise GateError(f"{label}: bad parallel.best_s {best!r}")
    jobs = section.get("jobs")
    if not isinstance(jobs, int) or jobs < 1:
        raise GateError(f"{label}: bad parallel.jobs {jobs!r}")
    return section


def _batch_section(document: dict, label: str) -> dict:
    """The document's batched jobs=1 leg, validated.

    Required on fresh documents (a bench run without the batch leg
    cannot gate the lane layer — fail loudly, never pass silently);
    the committed baseline may legitimately predate lanes, so callers
    only validate the *fresh* side.
    """
    section = document.get("jobs1_batch")
    if not isinstance(section, dict):
        raise GateError(f"{label}: missing jobs1_batch section")
    best = section.get("best_s")
    if not isinstance(best, (int, float)) or best <= 0:
        raise GateError(f"{label}: bad jobs1_batch.best_s {best!r}")
    return section


def _is_degenerate(section: dict) -> bool:
    """Whether the parallel leg could not actually run concurrently.

    An explicit ``degenerate`` flag wins; legacy sections without one
    are degenerate exactly when they resolved to a single worker.
    """
    flag = section.get("degenerate")
    if isinstance(flag, bool):
        return flag
    return section["jobs"] < 2


def check(
    fresh: dict,
    baseline: dict,
    threshold: float = DEFAULT_THRESHOLD,
    min_parallel_speedup: float = DEFAULT_MIN_PARALLEL_SPEEDUP,
    min_batch_speedup: float = DEFAULT_MIN_BATCH_SPEEDUP,
) -> tuple[bool, str]:
    """``(ok, message)`` for one fresh-vs-baseline comparison."""
    fresh_best = _jobs1_best(fresh, "fresh")
    base_best = _jobs1_best(baseline, "baseline")
    parallel = _parallel_section(fresh, "fresh")
    _parallel_section(baseline, "baseline")
    batched = _batch_section(fresh, "fresh")
    ratio = fresh_best / base_best
    limit = 1.0 + threshold
    ok = ratio <= limit
    message = (
        f"jobs=1 best {fresh_best:.4f}s vs baseline {base_best:.4f}s "
        f"({ratio:.2f}x, limit {limit:.2f}x)"
    )
    batch_speedup = fresh_best / float(batched["best_s"])
    message += (
        f"; batch leg {float(batched['best_s']):.4f}s "
        f"speedup {batch_speedup:.2f}x (min {min_batch_speedup:.2f}x)"
    )
    ok = ok and batch_speedup >= min_batch_speedup
    if _is_degenerate(parallel):
        message += (
            f"; parallel leg degenerate (jobs={parallel['jobs']}), "
            "speedup not gated"
        )
    else:
        speedup = fresh_best / float(parallel["best_s"])
        message += (
            f"; parallel jobs={parallel['jobs']} "
            f"({parallel.get('pool', '?')}) speedup {speedup:.2f}x "
            f"(min {min_parallel_speedup:.2f}x)"
        )
        ok = ok and speedup >= min_parallel_speedup
    return ok, message


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.crosstest.benchgate",
        description="fail if the jobs=1 crosstest wall time regressed "
        "or the parallel leg stopped paying for itself",
    )
    parser.add_argument("fresh", help="freshly measured bench JSON")
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"committed baseline (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional slowdown (default: "
        f"{DEFAULT_THRESHOLD:g} = {DEFAULT_THRESHOLD:.0%})",
    )
    parser.add_argument(
        "--min-parallel-speedup",
        type=float,
        default=DEFAULT_MIN_PARALLEL_SPEEDUP,
        help="required jobs1/parallel ratio on non-degenerate hosts "
        f"(default: {DEFAULT_MIN_PARALLEL_SPEEDUP:g})",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=DEFAULT_MIN_BATCH_SPEEDUP,
        help="required jobs1/jobs1_batch ratio — what deployment lanes "
        f"must buy over isolated trials (default: "
        f"{DEFAULT_MIN_BATCH_SPEEDUP:g})",
    )
    args = parser.parse_args(argv)
    if args.threshold < 0:
        print(f"bad --threshold {args.threshold}", file=sys.stderr)
        return 2
    if args.min_parallel_speedup <= 0:
        print(
            f"bad --min-parallel-speedup {args.min_parallel_speedup}",
            file=sys.stderr,
        )
        return 2
    if args.min_batch_speedup <= 0:
        print(
            f"bad --min-batch-speedup {args.min_batch_speedup}",
            file=sys.stderr,
        )
        return 2
    try:
        with open(args.fresh, encoding="utf-8") as handle:
            fresh = json.load(handle)
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        ok, message = check(
            fresh,
            baseline,
            args.threshold,
            args.min_parallel_speedup,
            args.min_batch_speedup,
        )
    except GateError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    verdict = "OK" if ok else "REGRESSION"
    print(f"[benchgate] {verdict}: {message}")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
