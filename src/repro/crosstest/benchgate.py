"""Bench-regression gate for the §8 trial matrix.

``python -m repro.crosstest.benchgate FRESH.json`` compares a freshly
measured benchmark document (``repro.crosstest.bench`` output) against
the committed ``BENCH_crosstest.json`` and fails when the sequential
(``jobs=1``) wall-clock regressed beyond the threshold. CI runs it so a
PR cannot silently slow the hot path — the fault hooks in particular
are a one-int check when no injector is active, and this gate is what
holds them to that.

The gate compares ``best_s`` (best-of-N, warm) rather than ``cold_s``:
cold numbers fold in import time and first-touch cache fills, which
vary with runner provisioning far more than the code under test does.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["DEFAULT_BASELINE", "DEFAULT_THRESHOLD", "check", "main"]

DEFAULT_BASELINE = "BENCH_crosstest.json"

#: allowed fractional slowdown of jobs=1 best_s before the gate fails
DEFAULT_THRESHOLD = 0.25


class GateError(ValueError):
    """A benchmark document is missing the fields the gate compares."""


def _jobs1_best(document: dict, label: str) -> float:
    try:
        best = document["jobs1"]["best_s"]
    except (KeyError, TypeError) as exc:
        raise GateError(f"{label}: missing jobs1.best_s") from exc
    if not isinstance(best, (int, float)) or best <= 0:
        raise GateError(f"{label}: bad jobs1.best_s {best!r}")
    return float(best)


def check(
    fresh: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> tuple[bool, str]:
    """``(ok, message)`` for one fresh-vs-baseline comparison."""
    fresh_best = _jobs1_best(fresh, "fresh")
    base_best = _jobs1_best(baseline, "baseline")
    ratio = fresh_best / base_best
    limit = 1.0 + threshold
    message = (
        f"jobs=1 best {fresh_best:.4f}s vs baseline {base_best:.4f}s "
        f"({ratio:.2f}x, limit {limit:.2f}x)"
    )
    return ratio <= limit, message


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.crosstest.benchgate",
        description="fail if the jobs=1 crosstest wall time regressed",
    )
    parser.add_argument("fresh", help="freshly measured bench JSON")
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"committed baseline (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional slowdown (default: "
        f"{DEFAULT_THRESHOLD:g} = {DEFAULT_THRESHOLD:.0%})",
    )
    args = parser.parse_args(argv)
    if args.threshold < 0:
        print(f"bad --threshold {args.threshold}", file=sys.stderr)
        return 2
    try:
        with open(args.fresh, encoding="utf-8") as handle:
            fresh = json.load(handle)
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        ok, message = check(fresh, baseline, args.threshold)
    except GateError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    verdict = "OK" if ok else "REGRESSION"
    print(f"[benchgate] {verdict}: {message}")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
