"""Command-line interface: ``python -m repro <command>``.

Commands map onto the paper's artifacts:

* ``study``     — regenerate Tables 1-9 and Findings 1-13 (C1/E1)
* ``crosstest`` — run the §8 Spark-Hive cross-test (C2/E2)
* ``fuzz``      — coverage-guided discrepancy search beyond the corpus
* ``campaign``  — the always-on version of ``fuzz``: checkpoint every
  batch, resume exactly after a kill, stream findings to the ledger
* ``replay``    — replay a named CSI failure (Figures 1-5 and more)
* ``confcheck`` — lint a deployment's configuration plane
* ``gaps``      — static reader-gap analysis per storage format
* ``trace``     — summarize exported boundary traces
* ``status``    — campaign observatory: ledger trends, co-occurrence
  clusters, live metrics (optionally served over HTTP)
* ``analyze``   — ledger analytics: commit/time windows, cluster drift
  at boundaries, cluster births/deaths/merges/splits
* ``triage``    — auto-triage a campaign's novel fingerprints from
  checkpoint provenance into a shrunk witness + baseline delta
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Fail through the Cracks' (EuroSys '23)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("study", help="regenerate Tables 1-9 and Findings 1-13")

    crosstest = sub.add_parser(
        "crosstest", help="run the §8 Spark-Hive cross-test"
    )
    crosstest.add_argument(
        "--conf",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="deployment configuration override (repeatable)",
    )
    crosstest.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    crosstest.add_argument(
        "--formats",
        default=None,
        help="comma-separated formats (default: orc,parquet,avro)",
    )
    crosstest.add_argument(
        "--corpus",
        default="full",
        choices=["full", "smoke"],
        help="input corpus: the full 422 curated inputs, or the "
        "coverage-distilled smoke subset that still triggers all 15 "
        "known discrepancy mechanisms (default: full)",
    )
    crosstest.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker count for the trial matrix "
        "(1 = sequential; default: auto-size to the host's cores)",
    )
    crosstest.add_argument(
        "--pool",
        default="auto",
        choices=["auto", "thread", "process"],
        help="worker pool flavour when --jobs > 1 (default: auto)",
    )
    crosstest.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="share deployment lanes between same-type trials "
        "(default: on; traced or fault-injected trials always run "
        "isolated; the report is byte-identical either way)",
    )
    crosstest.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the progress/summary lines on stderr",
    )
    crosstest.add_argument(
        "--profile",
        action="store_true",
        help="profile the run with cProfile and print the top 25 "
        "functions by internal time to stderr",
    )
    crosstest.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="trace every trial and write one trace file per found "
        "discrepancy (JSONL + chrome://tracing) into DIR",
    )
    crosstest.add_argument(
        "--metrics-json",
        default=None,
        metavar="PATH",
        help="dump the run's metrics and cache-registry snapshot as "
        "JSON to PATH",
    )
    crosstest.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="inject faults per PLAN: a builtin plan name "
        "(see 'repro faults list') or a JSON plan file",
    )
    crosstest.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for the deterministic fault schedule (default: 0)",
    )
    crosstest.add_argument(
        "--fault-json",
        default=None,
        metavar="PATH",
        help="dump the fault-robustness report as JSON to PATH",
    )
    crosstest.add_argument(
        "--fault-gate",
        action="store_true",
        help="exit 3 if any injected trial is classified mis-handled",
    )
    crosstest.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="append one campaign-ledger record for this run to PATH "
        "(JSONL; see 'repro status'). A write failure is reported on "
        "stderr without changing the run's exit code",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="coverage-guided search for new cross-system discrepancies",
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="campaign seed; every generator choice derives from it "
        "(default: 0)",
    )
    fuzz.add_argument(
        "--budget",
        type=int,
        default=64,
        metavar="N",
        help="candidates to generate — the determinism-safe budget "
        "unit, not wall-clock (default: 64)",
    )
    fuzz.add_argument(
        "--batch",
        type=int,
        default=16,
        metavar="N",
        help="candidates per scheduler round (default: 16)",
    )
    fuzz.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker count for each batch (default: 1; the campaign "
        "output is byte-identical at any jobs/pool setting)",
    )
    fuzz.add_argument(
        "--pool",
        default="auto",
        choices=["auto", "thread", "process"],
        help="worker pool flavour when --jobs > 1 (default: auto)",
    )
    fuzz.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="known-discrepancies baseline to dedup against (default: "
        "the committed known_discrepancies.json; 'none' for an empty "
        "baseline)",
    )
    fuzz.add_argument(
        "--out-dir",
        default=None,
        metavar="DIR",
        help="write fingerprints.jsonl plus one findings/<slug>/ dir "
        "(repro.json + trace.jsonl) per novel finding into DIR",
    )
    fuzz.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="merge this campaign's fingerprints into the baseline "
        "and save the union to PATH",
    )
    fuzz.add_argument(
        "--corpus",
        nargs="?",
        const="full",
        default=None,
        choices=["full", "smoke"],
        help="seed the mutation pool with the curated §8 corpus "
        "(parents only; corpus inputs are never executed). Optional "
        "value picks the corpus: 'full' (default when the flag is "
        "given) or the distilled 'smoke' subset",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip shrinking novel findings to minimal reproducers",
    )
    fuzz.add_argument(
        "--no-lanes",
        action="store_true",
        help="disable batched deployment lanes in the executor "
        "(campaign rounds are traced for coverage and therefore run "
        "isolated regardless; lanes only speed up the untraced "
        "shrinking phase)",
    )
    fuzz.add_argument(
        "--json", action="store_true", help="emit the result as JSON"
    )
    fuzz.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the progress/summary lines on stderr",
    )
    fuzz.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="append one campaign-ledger record for this run to PATH "
        "(JSONL; see 'repro status'). A write failure is reported on "
        "stderr without changing the run's exit code",
    )

    campaign = sub.add_parser(
        "campaign",
        help="run the fuzz pipeline continuously with per-batch "
        "checkpoints; a killed campaign resumes exactly",
    )
    campaign.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="campaign seed; every generator choice derives from it "
        "(default: 0)",
    )
    campaign.add_argument(
        "--batch",
        type=int,
        default=16,
        metavar="N",
        help="candidates per batch — one batch is the commit/checkpoint "
        "unit (default: 16)",
    )
    campaign.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker count per batch (default: 1; campaign output is "
        "byte-identical at any jobs/pool setting, resume included)",
    )
    campaign.add_argument(
        "--pool",
        default="auto",
        choices=["auto", "thread", "process"],
        help="worker pool flavour when --jobs > 1 (default: auto)",
    )
    campaign.add_argument(
        "--checkpoint",
        default="campaign-checkpoint.json",
        metavar="PATH",
        help="checkpoint file: written atomically after every batch, "
        "resumed from when it already exists "
        "(default: campaign-checkpoint.json)",
    )
    campaign.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="append one 'campaign' ledger record per batch to PATH "
        "(JSONL; see 'repro status')",
    )
    campaign.add_argument(
        "--fingerprints",
        default="campaign-fingerprints.jsonl",
        metavar="PATH",
        help="stream one JSONL record per first-seen fingerprint to "
        "PATH (default: campaign-fingerprints.jsonl)",
    )
    campaign.add_argument(
        "--max-batches",
        type=int,
        default=None,
        metavar="N",
        help="stop once the campaign has committed N batches in total "
        "(counts batches from before a resume too); omit for the "
        "perpetual case",
    )
    campaign.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop starting new batches after SECONDS of wall clock; "
        "the in-flight batch always drains and commits",
    )
    campaign.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="known-discrepancies baseline to dedup against (default: "
        "the committed known_discrepancies.json; 'none' for an empty "
        "baseline)",
    )
    campaign.add_argument(
        "--corpus",
        nargs="?",
        const="full",
        default=None,
        choices=["full", "smoke"],
        help="seed the mutation pool with the curated §8 corpus "
        "(parents only; corpus inputs are never executed)",
    )
    campaign.add_argument(
        "--no-lanes",
        action="store_true",
        help="disable batched deployment lanes in the executor",
    )
    campaign.add_argument(
        "--json",
        action="store_true",
        help="emit the invocation summary as JSON",
    )
    campaign.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-batch progress lines on stderr",
    )

    faults = sub.add_parser(
        "faults", help="inspect the fault-injection machinery"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    faults_sub.add_parser(
        "list", help="list injectable sites and builtin fault plans"
    )

    replay = sub.add_parser("replay", help="replay a named CSI failure")
    replay.add_argument(
        "jira", nargs="?", default=None,
        help="issue id (e.g. FLINK-12342); omit to list scenarios",
    )
    replay.add_argument(
        "--fixed", action="store_true", help="run the fixed variant"
    )

    confcheck = sub.add_parser(
        "confcheck", help="lint an example deployment's configuration plane"
    )
    confcheck.add_argument(
        "--scheduler", default="fair", choices=["fair", "capacity"]
    )

    gaps = sub.add_parser(
        "gaps", help="static reader-gap analysis for a storage format"
    )
    gaps.add_argument("format", nargs="?", default="avro")

    export = sub.add_parser(
        "export", help="dump the 120-case CSI dataset to a JSON file"
    )
    export.add_argument("path", help="output file (e.g. csi_failures.json)")

    trace = sub.add_parser(
        "trace", help="inspect boundary traces exported by --trace-dir"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="per-boundary span counts and latency percentiles",
    )
    summarize.add_argument(
        "directory", help="directory holding *.jsonl trace files"
    )
    summarize.add_argument(
        "--absent-policy",
        default="absent",
        choices=["zero", "absent", "error"],
        help="how a known boundary with no spans reads: absent "
        "(default; renders ABSENT), zero (the GCP-outage misread), "
        "or error (refuse the scrape)",
    )

    status = sub.add_parser(
        "status",
        help="campaign observatory: ledger trends, co-occurrence "
        "clusters, live metrics",
    )
    status.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="campaign ledger (JSONL) recorded with "
        "'crosstest --ledger' / 'fuzz --ledger'; omitted or empty "
        "ledgers render a 'no runs recorded' report",
    )
    status.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="J",
        help="minimum Jaccard similarity for two failure items to "
        "share a co-occurrence cluster (default: 0.5)",
    )
    status.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="campaign checkpoint written by 'repro campaign'; adds a "
        "live campaign panel (and the /campaign endpoint under --serve)",
    )
    status.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    status.add_argument(
        "--serve",
        default=None,
        metavar="[HOST:]PORT",
        help="serve /metrics, /ledger, /clusters and /campaign as JSON "
        "over HTTP until interrupted, instead of printing once. PORT 0 "
        "binds an ephemeral port; the resolved URL is printed to "
        "stdout either way",
    )
    status.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the informational lines on stderr",
    )

    analyze = sub.add_parser(
        "analyze",
        help="ledger analytics: windows, cluster drift at boundaries, "
        "cluster births/deaths/merges/splits",
    )
    analyze.add_argument(
        "--ledger",
        required=True,
        metavar="PATH",
        help="campaign ledger (JSONL) to analyze",
    )
    analyze.add_argument(
        "--by",
        default="commit",
        choices=["commit", "time"],
        help="window axis: env.git.commit boundaries (default) or "
        "fixed-width time buckets",
    )
    analyze.add_argument(
        "--window-seconds",
        type=float,
        default=None,
        metavar="S",
        help="time-window width for --by time (default: 86400, one "
        "nightly cadence)",
    )
    analyze.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="J",
        help="minimum Jaccard similarity for two failure items to "
        "share a co-occurrence cluster (default: 0.5)",
    )
    analyze.add_argument(
        "--min-delta",
        type=float,
        default=None,
        metavar="D",
        help="minimum per-window occurrence-rate change for a cluster "
        "to count as drifted (default: 0.25)",
    )
    analyze.add_argument(
        "--gate",
        action="store_true",
        help="exit 5 when any cluster drifted across a window "
        "boundary (the regression-alarm mode for CI)",
    )
    analyze.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    analyze.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the report text; useful with --gate when only "
        "the exit code matters",
    )

    triage = sub.add_parser(
        "triage",
        help="auto-triage a campaign's novel fingerprints: reproduce "
        "each from its checkpoint provenance, shrink the witness, "
        "emit a ready-to-commit baseline delta",
    )
    triage.add_argument(
        "--checkpoint",
        required=True,
        metavar="PATH",
        help="campaign checkpoint written by 'repro campaign'; witness "
        "inputs are regenerated from its (round, slot, input_id) "
        "coordinates",
    )
    triage.add_argument(
        "--fingerprints",
        default=None,
        metavar="PATH",
        help="fingerprint JSONL of the same campaign; restricts triage "
        "to the keys it marks novel (default: every novel key the "
        "checkpoint carries)",
    )
    triage.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="known-discrepancies baseline the delta extends (default: "
        "the committed known_discrepancies.json; 'none' for an empty "
        "baseline)",
    )
    triage.add_argument(
        "--out-dir",
        default="triage-out",
        metavar="DIR",
        help="where the triage artifacts land: triage-report.json/.txt, "
        "baseline-delta.json, proposed_known_discrepancies.json "
        "(default: triage-out)",
    )
    triage.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip delta-debugging the witnesses (faster; the report "
        "keeps the full-size witness)",
    )
    triage.add_argument(
        "--json",
        action="store_true",
        help="emit the triage report as JSON instead of text",
    )
    triage.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the informational lines on stderr",
    )
    return parser


def _cmd_study() -> int:
    from repro.core.analysis import compute_findings
    from repro.dataset import load_cbs_issues, load_failures, load_incidents

    findings = compute_findings(
        load_failures(), load_incidents(), load_cbs_issues()
    )
    for finding in findings:
        print(finding.render())
    reproduced = sum(1 for f in findings if f.holds)
    print(f"\n{reproduced}/13 findings reproduced")
    return 0 if reproduced == 13 else 1


def _cmd_crosstest(args: argparse.Namespace) -> int:
    import time

    from repro.crosstest import FORMATS, CrossTestMetrics, run_crosstest
    from repro.crosstest.executor import resolve_jobs
    from repro.faults import PlanError, load_plan
    from repro.formats import UnknownFormatError

    fault_plan = None
    if args.faults is not None:
        try:
            fault_plan = load_plan(args.faults)
        except PlanError as exc:
            print(f"bad --faults {args.faults!r}: {exc}", file=sys.stderr)
            return 2
    elif args.fault_seed:
        print(
            "--fault-seed has no effect without --faults", file=sys.stderr
        )
        return 2

    overrides = {}
    for item in args.conf:
        key, sep, value = item.partition("=")
        # an empty VALUE is legitimate configuration; an empty KEY or a
        # missing '=' is not.
        if not sep or not key:
            print(f"bad --conf {item!r}; expected KEY=VALUE", file=sys.stderr)
            return 2
        overrides[key] = value
    if args.jobs is not None and args.jobs < 1:
        print(f"bad --jobs {args.jobs}; expected >= 1", file=sys.stderr)
        return 2
    formats = (
        tuple(args.formats.split(",")) if args.formats else FORMATS
    )

    show_progress = not args.quiet and sys.stderr.isatty()

    def progress(done_shards, total_shards, done_trials, total_trials):
        print(
            f"\r[crosstest] shard {done_shards}/{total_shards} "
            f"({done_trials}/{total_trials} trials)",
            end="" if done_shards < total_shards else "\n",
            file=sys.stderr,
            flush=True,
        )

    metrics = CrossTestMetrics()
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    inputs = None
    if args.corpus == "smoke":
        from repro.crosstest.smoke import smoke_inputs

        inputs = smoke_inputs()
    started = time.perf_counter()
    try:
        report = run_crosstest(
            inputs=inputs,
            formats=formats,
            conf_overrides=overrides,
            jobs=args.jobs,
            pool=args.pool,
            metrics=metrics,
            progress=progress if show_progress else None,
            tracing=args.trace_dir is not None,
            fault_plan=fault_plan,
            fault_seed=args.fault_seed,
            batch=args.batch,
        )
    except UnknownFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    if profiler is not None:
        import pstats

        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("tottime").print_stats(25)

    trace_note = None
    if args.trace_dir is not None:
        trace_note = _write_trace_dir(report, args.trace_dir)
    if args.metrics_json is not None:
        with open(args.metrics_json, "w", encoding="utf-8") as handle:
            json.dump(metrics.to_json(), handle, indent=1, sort_keys=True)
            handle.write("\n")
    if args.fault_json is not None:
        fault_payload = (
            report.faults.to_json() if report.faults is not None else {}
        )
        with open(args.fault_json, "w", encoding="utf-8") as handle:
            json.dump(fault_payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
    ledger_note = ledger_error = None
    if args.ledger is not None:
        from repro.obs import Ledger, crosstest_record, run_env

        record = crosstest_record(
            report,
            corpus=args.corpus,
            conf_overrides=overrides,
            env=run_env(
                jobs=resolve_jobs(args.jobs),
                pool=args.pool,
                wall_s=elapsed,
                metrics=metrics,
            ),
        )
        try:
            Ledger(args.ledger).append(record)
            ledger_note = f"appended run record to {args.ledger}"
        except OSError as exc:
            # exit-code-preserving: a broken ledger must not turn a
            # completed run into a failure (nor mask --fault-gate)
            ledger_error = f"ledger error: {exc}"

    # The report goes to stdout first and is flushed before any summary
    # chatter hits stderr, so piped consumers never see the two streams
    # interleaved mid-report.
    if args.json:
        print(json.dumps(report.to_json(), indent=1))
    else:
        print("\n".join(report.summary_lines()))
    sys.stdout.flush()
    if ledger_error is not None:
        # errors are not chatter: reported even under --quiet
        print(f"[crosstest] {ledger_error}", file=sys.stderr)
    if not args.quiet:
        trials = int(metrics.trials_total.value)
        rate = trials / elapsed if elapsed > 0 else 0.0
        print(
            f"[crosstest] {trials} trials in {elapsed:.2f}s "
            f"({rate:.0f}/s, jobs={resolve_jobs(args.jobs)}, "
            f"errors: {metrics.error_summary()})",
            file=sys.stderr,
        )
        print(f"[crosstest] {metrics.cache_summary()}", file=sys.stderr)
        if trace_note is not None:
            print(f"[crosstest] {trace_note}", file=sys.stderr)
        if ledger_note is not None:
            print(f"[crosstest] {ledger_note}", file=sys.stderr)
    if args.fault_gate and report.faults is not None:
        mis_handled = report.faults.mis_handled()
        if mis_handled:
            print(
                f"[crosstest] fault gate: {len(mis_handled)} mis-handled "
                "trial(s)",
                file=sys.stderr,
            )
            return 3
    return 0


def _write_trace_dir(report, trace_dir: str) -> str:
    """Write one trace (JSONL + Chrome) per found discrepancy.

    Each file holds the spans of every trial in the discrepancy's
    differential bucket — writer side and reader side — plus a separate
    ``oracles.jsonl`` for the oracle-evaluation phase.
    """
    import os
    import re

    from repro.crosstest.catalog import CATALOG
    from repro.tracing import write_chrome_trace, write_jsonl

    os.makedirs(trace_dir, exist_ok=True)
    jiras = {entry.number: entry.jira for entry in CATALOG}
    written = 0
    for number, spans in report.discrepancy_traces().items():
        if not spans:
            continue
        # "HIVE-26533 / SPARK-40409" and friends must stay one path part
        jira = re.sub(r"[^A-Za-z0-9._-]+", "-", jiras.get(number, "UNKNOWN"))
        stem = f"discrepancy_{number:02d}_{jira}"
        write_jsonl(spans, os.path.join(trace_dir, f"{stem}.jsonl"))
        write_chrome_trace(
            spans, os.path.join(trace_dir, f"{stem}.chrome.json")
        )
        written += 1
    if report.oracle_spans:
        write_jsonl(
            list(report.oracle_spans),
            os.path.join(trace_dir, "oracles.jsonl"),
        )
    return f"wrote {written} discrepancy traces to {trace_dir}"


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import time

    from repro.fuzz import (
        Baseline,
        FuzzConfig,
        default_baseline_path,
        run_fuzz,
    )

    try:
        config = FuzzConfig(
            seed=args.seed,
            budget=args.budget,
            batch=args.batch,
            jobs=args.jobs,
            pool=args.pool,
            use_corpus=args.corpus is not None,
            corpus=args.corpus or "full",
            shrink=not args.no_shrink,
            lanes=not args.no_lanes,
        )
    except ValueError as exc:
        print(f"bad fuzz config: {exc}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"bad --jobs {args.jobs}; expected >= 1", file=sys.stderr)
        return 2

    if args.baseline == "none":
        baseline = Baseline.empty()
    else:
        baseline_path = (
            args.baseline
            if args.baseline is not None
            else default_baseline_path()
        )
        try:
            baseline = Baseline.load(baseline_path)
        except OSError as exc:
            if args.baseline is not None:
                print(f"bad --baseline: {exc}", file=sys.stderr)
                return 2
            # no committed baseline yet — everything found is novel
            baseline = Baseline.empty()

    show_progress = not args.quiet and sys.stderr.isatty()

    def progress(round_index, total_rounds, trials):
        print(
            f"\r[fuzz] round {round_index}/{total_rounds} "
            f"({trials} trials)",
            end="" if round_index < total_rounds else "\n",
            file=sys.stderr,
            flush=True,
        )

    metrics = None
    if args.ledger is not None:
        from repro.crosstest import CrossTestMetrics

        metrics = CrossTestMetrics(source="fuzz")
    started = time.perf_counter()
    result = run_fuzz(
        config,
        baseline,
        metrics=metrics,
        progress=progress if show_progress else None,
    )
    elapsed = time.perf_counter() - started

    ledger_note = ledger_error = None
    if args.ledger is not None:
        from repro.obs import Ledger, fuzz_record, run_env

        record = fuzz_record(
            result,
            env=run_env(
                jobs=config.jobs,
                pool=args.pool,
                wall_s=elapsed,
                metrics=metrics,
            ),
        )
        try:
            Ledger(args.ledger).append(record)
            ledger_note = f"appended run record to {args.ledger}"
        except OSError as exc:
            # exit-code-preserving: a broken ledger must not mask the
            # novel-findings exit code (4) with a failure of its own
            ledger_error = f"ledger error: {exc}"

    if args.out_dir is not None:
        note = _write_fuzz_out_dir(result, args.out_dir)
        if not args.quiet:
            print(f"[fuzz] {note}", file=sys.stderr)
    if args.write_baseline is not None:
        merged = Baseline(dict(baseline.fingerprints))
        added = sum(
            merged.add(finding.fingerprint)
            for finding in result.findings.values()
        )
        merged.save(args.write_baseline)
        if not args.quiet:
            print(
                f"[fuzz] wrote baseline ({len(merged.fingerprints)} "
                f"fingerprints, {added} new) to {args.write_baseline}",
                file=sys.stderr,
            )

    section = result.section()
    if args.json:
        print(json.dumps(section.to_json(), indent=1, sort_keys=True))
    else:
        print("\n".join(section.summary_lines()))
    sys.stdout.flush()
    if ledger_error is not None:
        # errors are not chatter: reported even under --quiet
        print(f"[fuzz] {ledger_error}", file=sys.stderr)
    if not args.quiet:
        rate = result.trials_run / elapsed if elapsed > 0 else 0.0
        print(
            f"[fuzz] {result.trials_run} trials in {elapsed:.2f}s "
            f"({rate:.0f}/s, jobs={config.jobs}); "
            f"{len(result.findings)} fingerprints "
            f"({len(result.novel_findings)} novel)",
            file=sys.stderr,
        )
        if ledger_note is not None:
            print(f"[fuzz] {ledger_note}", file=sys.stderr)
    return 4 if result.novel_findings else 0


def _write_fuzz_out_dir(result, out_dir: str) -> str:
    """Write the campaign's artifacts: the fingerprint JSONL plus one
    ``findings/<slug>/`` directory (repro.json + trace.jsonl) per novel
    finding. Every byte is derived from the (deterministic) result, so
    two equal campaigns write identical trees.
    """
    import os
    import re

    from repro.tracing import write_jsonl

    os.makedirs(out_dir, exist_ok=True)
    jsonl_path = os.path.join(out_dir, "fingerprints.jsonl")
    with open(jsonl_path, "w", encoding="utf-8") as handle:
        for record in result.fingerprint_records():
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    written = 0
    for index, finding in enumerate(result.novel_findings):
        fp = finding.fingerprint
        slug = re.sub(
            r"[^A-Za-z0-9._-]+",
            "-",
            f"{index:03d}_{fp.oracle}_{fp.type_shape}",
        )
        finding_dir = os.path.join(out_dir, "findings", slug)
        os.makedirs(finding_dir, exist_ok=True)
        with open(
            os.path.join(finding_dir, "repro.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(finding.to_json(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        spans = result.spans_by_input.get(finding.witness.input_id, [])
        if spans:
            write_jsonl(
                list(spans), os.path.join(finding_dir, "trace.jsonl")
            )
        written += 1
    return (
        f"wrote {len(result.findings)} fingerprints and {written} "
        f"novel-finding dirs to {out_dir}"
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    import asyncio

    from repro.campaign import CampaignService, CheckpointError
    from repro.fuzz import Baseline, FuzzConfig, default_baseline_path

    if args.jobs < 1:
        print(f"bad --jobs {args.jobs}; expected >= 1", file=sys.stderr)
        return 2
    if args.max_batches is not None and args.max_batches < 1:
        print(
            f"bad --max-batches {args.max_batches}; expected >= 1",
            file=sys.stderr,
        )
        return 2
    if args.duration is not None and args.duration <= 0:
        print(
            f"bad --duration {args.duration}; expected > 0", file=sys.stderr
        )
        return 2
    try:
        config = FuzzConfig(
            seed=args.seed,
            budget=args.batch,  # unused by the service; rounds are the unit
            batch=args.batch,
            jobs=args.jobs,
            pool=args.pool,
            use_corpus=args.corpus is not None,
            corpus=args.corpus or "full",
            shrink=False,
            lanes=not args.no_lanes,
        )
    except ValueError as exc:
        print(f"bad campaign config: {exc}", file=sys.stderr)
        return 2

    if args.baseline == "none":
        baseline = Baseline.empty()
    else:
        baseline_path = (
            args.baseline
            if args.baseline is not None
            else default_baseline_path()
        )
        try:
            baseline = Baseline.load(baseline_path)
        except OSError as exc:
            if args.baseline is not None:
                print(f"bad --baseline: {exc}", file=sys.stderr)
                return 2
            # no committed baseline yet — everything found is novel
            baseline = Baseline.empty()

    def progress(outcome):
        print(
            f"[campaign] batch {outcome.round_index}: "
            f"{outcome.trials} trials, "
            f"{len(outcome.new_keys)} new fingerprints "
            f"({len(outcome.novel_keys)} novel), "
            f"coverage {outcome.coverage_features}",
            file=sys.stderr,
            flush=True,
        )

    service = CampaignService(
        config,
        baseline,
        checkpoint_path=args.checkpoint,
        fingerprints_path=args.fingerprints,
        ledger_path=args.ledger,
        max_batches=args.max_batches,
        duration=args.duration,
        progress=None if args.quiet else progress,
    )
    try:
        summary = asyncio.run(service.run())
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(summary.to_json(), indent=1, sort_keys=True))
    else:
        verb = "resumed" if summary.resumed else "started"
        print(
            f"campaign {verb} at batch "
            f"{summary.batches_total - summary.batches_run}, "
            f"ran {summary.batches_run} batch(es) "
            f"(stop: {summary.stop_reason})"
        )
        print(
            f"  total: {summary.batches_total} batches, "
            f"{summary.candidates} candidates, {summary.trials} trials"
        )
        print(
            f"  found: {summary.fingerprints} fingerprints "
            f"({len(summary.novel_keys)} novel), "
            f"coverage {summary.coverage_features}"
        )
        for key in summary.novel_keys[:10]:
            print(f"  novel: {key}")
        if len(summary.novel_keys) > 10:
            print(f"  ... {len(summary.novel_keys) - 10} more novel")
    sys.stdout.flush()
    if not args.quiet and summary.novel_seen:
        print(
            "[campaign] novel fingerprints seen — exiting 4 "
            "(same contract as 'repro fuzz')",
            file=sys.stderr,
        )
    return summary.exit_code


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import BUILTIN_PLANS, KNOWN_SITES

    if args.faults_command == "list":
        print("injectable sites:")
        for site in KNOWN_SITES:
            kinds = ",".join(site.kinds)
            print(f"  {site.site:18} {site.operation:26} [{kinds}]")
        print("builtin plans:")
        for name, plan in sorted(BUILTIN_PLANS.items()):
            print(f"  {name:20} {plan.description}")
            for rule in plan.rules:
                cap = (
                    f", max {rule.max_per_trial}/trial"
                    if rule.max_per_trial
                    else ""
                )
                print(
                    f"    {rule.site}/{rule.operation}: "
                    f"{rule.kind} @ {rule.rate:g}{cap}"
                )
        return 0
    raise AssertionError(f"unhandled faults command {args.faults_command}")


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.scenarios import SCENARIOS, by_jira

    if args.jira is None:
        for scenario in SCENARIOS:
            print(
                f"{scenario.jira:14} [{scenario.plane}] "
                f"{scenario.upstream} -> {scenario.downstream}: "
                f"{scenario.pattern}"
            )
        return 0
    try:
        scenario = by_jira(args.jira.upper())
    except KeyError:
        print(f"no scenario for {args.jira!r}", file=sys.stderr)
        return 2
    outcome = (
        scenario.run_fixed() if args.fixed else scenario.run_failing()
    )
    print(outcome.describe())
    for key, value in sorted(outcome.metrics.items()):
        print(f"  {key} = {value}")
    return 1 if outcome.failed else 0


def _cmd_confcheck(args: argparse.Namespace) -> int:
    from repro.confcheck import Deployment, check_deployment, default_rules
    from repro.flinklite.configs import HEAP_CUTOFF_RATIO, FlinkConf
    from repro.sparklite.conf import SparkConf
    from repro.yarnlite.configs import SCHEDULER_CLASS, YarnConf

    yarn = YarnConf()
    yarn.set(SCHEDULER_CLASS, args.scheduler, source="cli")
    flink = FlinkConf()
    flink.set(HEAP_CUTOFF_RATIO, "0.0", source="cli")  # the FLINK-887 bug
    deployment = (
        Deployment().add(yarn).add(flink).add(SparkConf())
    )
    violations = check_deployment(deployment, default_rules())
    if not violations:
        print("deployment configuration is coherent")
        return 0
    for violation in violations:
        print(violation.render())
    return 1


def _cmd_gaps(args: argparse.Namespace) -> int:
    from repro.evolution import reader_gaps
    from repro.formats import serializer_for

    gaps = reader_gaps(serializer_for(args.format))
    if not gaps:
        print(f"{args.format}: no reader gaps")
        return 0
    print(f"{args.format}: {len(gaps)} reader gaps")
    for gap in gaps:
        print(f"  {gap.render()}")
    return 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.metrics import AbsentPolicy, MetricError
    from repro.tracing import read_jsonl_dir, summary_lines

    try:
        spans = read_jsonl_dir(args.directory)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print("\n".join(summary_lines(spans, AbsentPolicy(args.absent_policy))))
    except MetricError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _iso(ts: float) -> str:
    import time

    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(ts))


def _status_registries():
    """The live registries the status surface exposes: the process-wide
    cache stats (the only registry with module lifetime — run registries
    die with their runs)."""
    from repro.metrics.caches import cache_stats_registry

    return (cache_stats_registry(),)


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.obs import (
        DEFAULT_THRESHOLD,
        LEDGER_SCHEMA_VERSION,
        LedgerError,
        ObsServer,
        campaign_snapshot,
        check_schema,
        cluster_ledger,
        read_ledger,
    )

    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    )
    if not 0.0 < threshold <= 1.0:
        print(
            f"bad --threshold {threshold}; expected a Jaccard similarity "
            "in (0, 1]",
            file=sys.stderr,
        )
        return 2

    records: list[dict] = []
    if args.ledger is not None:
        try:
            # tolerate a torn trailing line: a live campaign writer
            # killed mid-append must not break its own status surface
            records = read_ledger(args.ledger, tolerate_truncated_tail=True)
            check_schema(records, args.ledger)
        except LedgerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.serve is not None:
        host, sep, port_text = args.serve.rpartition(":")
        if not sep:
            host = "127.0.0.1"
        try:
            port = int(port_text)
        except ValueError:
            print(
                f"bad --serve {args.serve!r}; expected [HOST:]PORT",
                file=sys.stderr,
            )
            return 2
        try:
            server = ObsServer(
                ledger_path=args.ledger,
                registries=_status_registries(),
                host=host,
                port=port,
                threshold=threshold,
                checkpoint_path=args.checkpoint,
            )
        except OSError as exc:
            print(f"error: cannot bind {args.serve!r}: {exc}", file=sys.stderr)
            return 2
        # the *resolved* URL goes to stdout even under --quiet: with an
        # ephemeral port (--serve 0) it is the only way a script can
        # learn where the server actually bound
        print(f"serving at {server.url()}", flush=True)
        if not args.quiet:
            print(
                f"[status] serving {', '.join(server.ENDPOINTS)} "
                f"at {server.url()} (Ctrl-C to stop)",
                file=sys.stderr,
            )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
        return 0

    clusters = cluster_ledger(records, threshold=threshold)
    metrics_snapshot = {
        registry.system: registry.snapshot()
        for registry in _status_registries()
    }

    if args.json:
        payload = {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "ledger": args.ledger,
            "total_runs": len(records),
            "threshold": threshold,
            "runs": records,
            "clusters": [cluster.to_json() for cluster in clusters],
            "metrics": metrics_snapshot,
        }
        from repro.analytics import analyze_ledger

        payload["analytics"] = analyze_ledger(
            records, threshold=threshold
        ).to_json()
        if args.checkpoint is not None:
            payload["campaign"] = campaign_snapshot(args.checkpoint)
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0

    print(
        f"campaign ledger: {args.ledger or '(none)'} "
        f"(schema v{LEDGER_SCHEMA_VERSION})"
    )
    if args.checkpoint is not None:
        panel = campaign_snapshot(args.checkpoint)
        if not panel["active"]:
            detail = panel.get("error", "no checkpoint yet")
            print(f"campaign: {args.checkpoint} — {detail}")
        else:
            print(
                f"campaign: {args.checkpoint} — batch {panel['batches']}, "
                f"{panel['candidates']} candidates, {panel['trials']} "
                f"trials, {panel['fingerprints']} fingerprints "
                f"({panel['novel']} novel), coverage "
                f"{panel['coverage_features']}, last commit "
                f"{_iso(float(panel['mtime']))}"
            )
    if not records:
        print(
            "no runs recorded — record one with "
            "'repro crosstest --ledger PATH' or 'repro fuzz --ledger PATH'"
        )
        return 0

    kinds: dict[str, int] = {}
    for record in records:
        kind = str(record.get("kind", "?"))
        kinds[kind] = kinds.get(kind, 0) + 1
    kind_text = ", ".join(
        f"{count} {kind}" for kind, count in sorted(kinds.items())
    )
    timestamps = [float(record.get("ts", 0.0)) for record in records]
    print(
        f"runs: {len(records)} ({kind_text}), "
        f"{_iso(min(timestamps))} .. {_iso(max(timestamps))}"
    )
    print()
    print("recent runs (newest last):")
    for record in records[-10:]:
        results = record.get("results", {})
        run = record.get("run", {})
        fingerprints = len(results.get("fingerprints", ()))
        faults = results.get("faults") or {}
        fault_text = (
            f", faults={faults.get('plan')}"
            f" mis_handled={len(faults.get('mis_handled', ()))}"
            if faults
            else ""
        )
        print(
            f"  {_iso(float(record.get('ts', 0.0)))} "
            f"{record.get('kind', '?'):9} "
            f"trials={results.get('trials', 0):<5} "
            f"fingerprints={fingerprints}{fault_text}"
            + (
                f" corpus={run.get('corpus')}"
                if run.get("corpus") is not None
                else ""
            )
        )
    print()
    if not clusters:
        print(
            f"co-occurrence clusters (Jaccard >= {threshold:g}): none — "
            "no failure items recorded yet"
        )
    else:
        print(
            f"co-occurrence clusters (Jaccard >= {threshold:g}): "
            f"{len(clusters)}"
        )
        for index, cluster in enumerate(clusters, start=1):
            failed = len(cluster.runs)
            print(
                f"  #{index}: {len(cluster.members)} member(s), "
                f"flake {cluster.flake_rate:.0%} "
                f"({failed}/{len(records)} runs), "
                f"seams: {', '.join(cluster.seams)}"
            )
            print(
                f"      first seen {_iso(cluster.first_seen)}, "
                f"last seen {_iso(cluster.last_seen)}"
            )
            for member in cluster.members[:5]:
                print(f"      {member}")
            if len(cluster.members) > 5:
                print(f"      ... {len(cluster.members) - 5} more")
    from repro.analytics import commit_windows, detect_drift

    if len(commit_windows(records)) >= 2:
        drifts = detect_drift(records, threshold=threshold)
        print()
        if not drifts:
            print("commit drift: none — cluster rates stable across commits")
        else:
            print(f"commit drift: {len(drifts)} flagged cluster(s)")
            for drift in drifts:
                print(
                    f"  {drift.direction} at {drift.boundary[0]} -> "
                    f"{drift.boundary[1]}: {drift.before_rate:.0%} -> "
                    f"{drift.after_rate:.0%}, "
                    f"{len(drift.cluster)} member(s) "
                    f"({', '.join(drift.seams)}) — "
                    "see 'repro analyze' for detail"
                )
    live = {
        system: snapshot
        for system, snapshot in metrics_snapshot.items()
        if snapshot
    }
    if live:
        print()
        print("live metrics:")
        for system, snapshot in sorted(live.items()):
            for name, entry in sorted(snapshot.items()):
                if entry.get("kind") == "histogram":
                    value = f"count={entry.get('count', 0)}"
                else:
                    value = f"{entry.get('value', 0)}"
                print(f"  {system}.{name} = {value}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analytics import (
        DEFAULT_MIN_DELTA,
        DEFAULT_WINDOW_SECONDS,
        analyze_ledger,
    )
    from repro.obs import (
        DEFAULT_THRESHOLD,
        LedgerError,
        check_schema,
        read_ledger,
    )

    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    )
    min_delta = (
        args.min_delta if args.min_delta is not None else DEFAULT_MIN_DELTA
    )
    window_seconds = (
        args.window_seconds
        if args.window_seconds is not None
        else DEFAULT_WINDOW_SECONDS
    )
    if not 0.0 < threshold <= 1.0:
        print(
            f"bad --threshold {threshold}; expected a Jaccard similarity "
            "in (0, 1]",
            file=sys.stderr,
        )
        return 2
    if not 0.0 < min_delta <= 1.0:
        print(
            f"bad --min-delta {min_delta}; expected a rate change "
            "in (0, 1]",
            file=sys.stderr,
        )
        return 2
    if window_seconds <= 0:
        print(
            f"bad --window-seconds {window_seconds}; expected > 0",
            file=sys.stderr,
        )
        return 2

    try:
        records = read_ledger(args.ledger, tolerate_truncated_tail=True)
        check_schema(records, args.ledger)
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report = analyze_ledger(
        records,
        by=args.by,
        window_seconds=window_seconds,
        threshold=threshold,
        min_delta=min_delta,
    )

    if args.json:
        print(json.dumps(report.to_json(), indent=1, sort_keys=True))
    elif not args.quiet:
        print(
            f"ledger: {args.ledger} — {len(records)} runs, "
            f"{len(report.windows)} {args.by} window(s)"
        )
        for window in report.windows:
            print(
                f"  window #{window.index} [{window.label}]: "
                f"{len(window.records)} runs, "
                f"{len(window.items())} failure item(s), "
                f"{_iso(window.start)} .. {_iso(window.end)}"
            )
        print()
        if not report.drifts:
            print(
                f"drift (|rate change| >= {min_delta:g}): none — every "
                "cluster's occurrence rate is stable across boundaries"
            )
        else:
            print(f"drift (|rate change| >= {min_delta:g}): {len(report.drifts)}")
            for drift in report.drifts:
                print(
                    f"  {drift.direction.upper():9} "
                    f"{drift.boundary[0]} -> {drift.boundary[1]}: "
                    f"{drift.before_rate:.0%} -> {drift.after_rate:.0%} "
                    f"({drift.delta:+.0%}), seams: {', '.join(drift.seams)}"
                )
                for member in drift.cluster[:3]:
                    print(f"      {member}")
                if len(drift.cluster) > 3:
                    print(f"      ... {len(drift.cluster) - 3} more")
        if report.evolution:
            print()
            print(f"cluster evolution: {len(report.evolution)} event(s)")
            for event in report.evolution:
                print(
                    f"  {event.kind.upper():6} at "
                    f"{event.boundary[0]} -> {event.boundary[1]}: "
                    f"{len(event.cluster)} member(s), e.g. "
                    f"{event.cluster[0]}"
                )
    if args.gate and report.drifts:
        if not args.quiet:
            print(
                f"[analyze] {len(report.drifts)} drifted cluster(s) — "
                "exiting 5 (--gate)",
                file=sys.stderr,
            )
        return 5
    return 0


def _cmd_triage(args: argparse.Namespace) -> int:
    from repro.analytics import TriageError, triage_checkpoint, write_triage
    from repro.campaign import CheckpointError
    from repro.fuzz.dedup import Baseline, default_baseline_path

    if args.baseline == "none":
        baseline = Baseline.empty()
    else:
        baseline_path = (
            args.baseline
            if args.baseline is not None
            else default_baseline_path()
        )
        try:
            baseline = Baseline.load(baseline_path)
        except OSError as exc:
            if args.baseline is not None:
                print(f"bad --baseline: {exc}", file=sys.stderr)
                return 2
            baseline = Baseline.empty()

    try:
        report, delta, proposed = triage_checkpoint(
            args.checkpoint,
            baseline,
            fingerprints_path=args.fingerprints,
            shrink=not args.no_shrink,
        )
    except (TriageError, CheckpointError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    paths = write_triage(args.out_dir, report, delta, proposed)
    if args.json:
        payload = report.to_json()
        payload["artifacts"] = paths
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        print(report.to_text())
        print()
        print(f"baseline delta:    {paths['delta']} ({len(delta)} entries)")
        print(f"proposed baseline: {paths['proposed']} ({len(proposed)} entries)")
    if not report.all_reproduced:
        if not args.quiet:
            print(
                "[triage] some novel fingerprints failed to reproduce "
                "from their provenance coordinates — exiting 1 (either "
                "the determinism contract broke, or checkpoint and "
                "build are from different campaigns)",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.dataset.io import dump_failures
    from repro.dataset.opensource import load_failures

    path = dump_failures(load_failures(), args.path)
    print(f"wrote 120 CSI failure records to {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "study":
        return _cmd_study()
    if args.command == "crosstest":
        return _cmd_crosstest(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "confcheck":
        return _cmd_confcheck(args)
    if args.command == "gaps":
        return _cmd_gaps(args)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "triage":
        return _cmd_triage(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
