"""ORC-like columnar format.

ORC preserves the full integral lattice (BYTE/SHORT survive round
trips) and allows arbitrary map key types. Its quirk is a *metadata
convention*: files written by Hive name their columns positionally
(``_col0``, ``_col1``, ...) and keep the real names only in the
metastore — the root of SPARK-21686 ("Spark failed to read column names
in ORC files written by Hive", an "unspoken convention" in Table 6).
The positional renaming is applied by the HiveQL engine at write time;
this class records whether a file carries real or positional names so
readers can tell.
"""

from __future__ import annotations

from repro.common.types import DataType, IntervalType, TimestampNTZType, TimestampType
from repro.errors import UnsupportedTypeError
from repro.formats.base import Serializer

__all__ = ["OrcSerializer", "HIVE_POSITIONAL_PROPERTY"]

#: Writer property marking a file whose column names are positional.
HIVE_POSITIONAL_PROPERTY = "orc.hive.positional.names"


class OrcSerializer(Serializer):
    format_name = "orc"
    supports_native_schema_inference = True

    def physical_atomic(self, dtype: DataType) -> DataType:
        if isinstance(dtype, TimestampNTZType):
            # ORC has a single timestamp storage type.
            return TimestampType()
        if isinstance(dtype, IntervalType):
            raise UnsupportedTypeError(
                "orc has no representation for interval types"
            )
        return dtype
