"""Simulated storage formats (Avro / ORC / Parquet / text)."""

from repro.formats.avro import AvroSerializer
from repro.formats.base import FORMAT_VERSION, Serializer, TableData
from repro.formats.orc import HIVE_POSITIONAL_PROPERTY, OrcSerializer
from repro.formats.parquet import ParquetSerializer
from repro.formats.textfile import NULL_MARKER, TextSerializer
from repro.formats.unified import LOGICAL_SCHEMA_PROPERTY, UnifiedSerializer

__all__ = [
    "AvroSerializer",
    "FORMAT_VERSION",
    "Serializer",
    "TableData",
    "HIVE_POSITIONAL_PROPERTY",
    "OrcSerializer",
    "ParquetSerializer",
    "NULL_MARKER",
    "TextSerializer",
    "LOGICAL_SCHEMA_PROPERTY",
    "UnifiedSerializer",
    "serializer_for",
    "SERIALIZERS",
]

SERIALIZERS: dict[str, type[Serializer]] = {
    "avro": AvroSerializer,
    "orc": OrcSerializer,
    "parquet": ParquetSerializer,
    "text": TextSerializer,
}

_UNIFIED_PREFIX = "unified_"


def serializer_for(format_name: str) -> Serializer:
    """Instantiate the serializer for a format name (case-insensitive).

    ``unified_<base>`` wraps the base format in the
    :class:`UnifiedSerializer` layer (§10's proposed mitigation).
    """
    lowered = format_name.lower()
    if lowered.startswith(_UNIFIED_PREFIX):
        base = serializer_for(lowered[len(_UNIFIED_PREFIX) :])
        return UnifiedSerializer(base)
    try:
        return SERIALIZERS[lowered]()
    except KeyError:
        raise ValueError(
            f"unknown storage format {format_name!r}; "
            f"known: {sorted(SERIALIZERS)} (+ 'unified_<base>')"
        ) from None
