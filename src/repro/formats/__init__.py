"""Simulated storage formats (Avro / ORC / Parquet / text)."""

import functools

from repro.formats.avro import AvroSerializer
from repro.formats.base import FORMAT_VERSION, Serializer, TableData
from repro.formats.orc import HIVE_POSITIONAL_PROPERTY, OrcSerializer
from repro.formats.parquet import ParquetSerializer
from repro.formats.textfile import NULL_MARKER, TextSerializer
from repro.formats.unified import LOGICAL_SCHEMA_PROPERTY, UnifiedSerializer

__all__ = [
    "AvroSerializer",
    "FORMAT_VERSION",
    "Serializer",
    "TableData",
    "HIVE_POSITIONAL_PROPERTY",
    "OrcSerializer",
    "ParquetSerializer",
    "NULL_MARKER",
    "TextSerializer",
    "LOGICAL_SCHEMA_PROPERTY",
    "UnifiedSerializer",
    "serializer_for",
    "SERIALIZERS",
    "UnknownFormatError",
    "is_known_format",
    "known_formats",
    "validate_formats",
]


class UnknownFormatError(ValueError):
    """A format name that no registered serializer understands."""

SERIALIZERS: dict[str, type[Serializer]] = {
    "avro": AvroSerializer,
    "orc": OrcSerializer,
    "parquet": ParquetSerializer,
    "text": TextSerializer,
}

_UNIFIED_PREFIX = "unified_"


@functools.lru_cache(maxsize=64)
def _serializer_instance(lowered: str) -> Serializer:
    if lowered.startswith(_UNIFIED_PREFIX):
        base = _serializer_instance(lowered[len(_UNIFIED_PREFIX) :])
        return UnifiedSerializer(base)
    try:
        return SERIALIZERS[lowered]()
    except KeyError:
        raise UnknownFormatError(
            f"unknown storage format {lowered!r}; "
            f"known: {sorted(SERIALIZERS)} (+ 'unified_<base>')"
        ) from None


def serializer_for(format_name: str) -> Serializer:
    """The serializer for a format name (case-insensitive).

    ``unified_<base>`` wraps the base format in the
    :class:`UnifiedSerializer` layer (§10's proposed mitigation).
    Serializers are stateless, so instances are shared: repeated lookups
    for the same format return the same object (and with it, its
    compiled per-column codecs).
    """
    return _serializer_instance(format_name.lower())


def known_formats() -> list[str]:
    """Every base format name a serializer is registered for."""
    return sorted(SERIALIZERS)


def is_known_format(format_name: str) -> bool:
    """Whether :func:`serializer_for` would accept ``format_name``."""
    lowered = format_name.lower()
    if lowered.startswith(_UNIFIED_PREFIX):
        return is_known_format(lowered[len(_UNIFIED_PREFIX) :])
    return lowered in SERIALIZERS


def validate_formats(formats) -> tuple[str, ...]:
    """Check every name against the serializer registry.

    Returns the formats unchanged (as a tuple) or raises
    :class:`UnknownFormatError` naming the offenders and the valid set —
    the cross-test harness calls this up front so a typo like ``orcc``
    fails loudly instead of running thousands of doomed trials.
    """
    formats = tuple(formats)
    unknown = [f for f in formats if not is_known_format(f)]
    if not formats or unknown:
        offenders = ", ".join(repr(f) for f in unknown) or "<empty>"
        raise UnknownFormatError(
            f"unknown storage format(s) {offenders}; "
            f"valid formats: {', '.join(known_formats())} "
            "(+ 'unified_<base>')"
        )
    return formats
