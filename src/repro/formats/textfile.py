"""Text-file (LazySimpleSerDe-like) format.

Everything becomes a string on disk; NULL is the ``\\N`` marker. The
lattice collapse is total, so round trips depend entirely on the reading
engine's casting — the most extreme example of the paper's "ad-hoc
serialization" root cause (Finding 6).
"""

from __future__ import annotations

import datetime
import decimal
import math

from repro.common.types import BinaryType, DataType, StringType
from repro.errors import UnsupportedTypeError
from repro.formats.base import Serializer

__all__ = ["TextSerializer", "NULL_MARKER"]

NULL_MARKER = "\\N"


class TextSerializer(Serializer):
    format_name = "text"
    supports_native_schema_inference = False

    def physical_atomic(self, dtype: DataType) -> DataType:
        if isinstance(dtype, BinaryType):
            raise UnsupportedTypeError("text files cannot store binary columns")
        return StringType()

    def check_map_key(self, key_type: DataType) -> None:
        # Text maps are "k1:v1,k2:v2" strings; keys must stringify, which
        # everything we store can, so no restriction here.
        return

    def to_physical(self, value: object, dtype: DataType) -> object:
        if value is None:
            return NULL_MARKER
        return _stringify(value)


def _stringify(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        return repr(value)
    if isinstance(value, decimal.Decimal):
        return str(value)
    if isinstance(value, datetime.datetime):
        return value.isoformat(sep=" ")
    if isinstance(value, datetime.date):
        return value.isoformat()
    if isinstance(value, datetime.timedelta):
        return f"{value.total_seconds()} seconds"
    if isinstance(value, (list, tuple)):
        return ",".join(_stringify(v) if v is not None else NULL_MARKER for v in value)
    if isinstance(value, dict):
        return ",".join(
            f"{_stringify(k)}:{_stringify(v) if v is not None else NULL_MARKER}"
            for k, v in value.items()
        )
    return str(value)
