"""A tagged, self-describing byte encoding for row data.

Every storage format in :mod:`repro.formats` serializes to real bytes
through this codec, so that table data genuinely round-trips through the
simulated filesystem rather than being passed as live Python objects.
The codec is JSON-based with explicit type tags for the values JSON
cannot represent (bytes, Decimal, dates, NaN/Infinity, non-string map
keys, ...).
"""

from __future__ import annotations

import base64
import datetime
import decimal
import json
import math

from repro.errors import SerializationError

__all__ = ["encode_value", "decode_value", "dumps", "loads"]


def encode_value(value: object) -> object:
    """Convert a cell value to a JSON-representable tagged form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return {"$t": "f", "v": "nan"}
        if math.isinf(value):
            return {"$t": "f", "v": "inf" if value > 0 else "-inf"}
        return value
    if isinstance(value, decimal.Decimal):
        return {"$t": "dec", "v": str(value)}
    if isinstance(value, bytes):
        return {"$t": "bin", "v": base64.b64encode(value).decode("ascii")}
    if isinstance(value, datetime.datetime):
        return {"$t": "ts", "v": value.isoformat()}
    if isinstance(value, datetime.date):
        return {"$t": "date", "v": value.isoformat()}
    if isinstance(value, datetime.timedelta):
        return {"$t": "iv", "v": value.total_seconds()}
    if isinstance(value, (list, tuple)):
        return {"$t": "arr", "v": [encode_value(item) for item in value]}
    if isinstance(value, dict):
        return {
            "$t": "map",
            "v": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    raise SerializationError(f"cannot encode value of type {type(value).__name__}")


def decode_value(encoded: object) -> object:
    """Inverse of :func:`encode_value`."""
    if encoded is None or isinstance(encoded, (bool, int, float, str)):
        return encoded
    if not isinstance(encoded, dict):
        raise SerializationError(f"malformed encoded value: {encoded!r}")
    tag = encoded.get("$t")
    payload = encoded.get("v")
    if tag == "f":
        return {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}[payload]
    if tag == "dec":
        return decimal.Decimal(payload)
    if tag == "bin":
        return base64.b64decode(payload)
    if tag == "ts":
        return datetime.datetime.fromisoformat(payload)
    if tag == "date":
        return datetime.date.fromisoformat(payload)
    if tag == "iv":
        return datetime.timedelta(seconds=payload)
    if tag == "arr":
        return [decode_value(item) for item in payload]
    if tag == "map":
        return {decode_value(k): decode_value(v) for k, v in payload}
    raise SerializationError(f"unknown value tag {tag!r}")


def dumps(document: dict) -> bytes:
    try:
        return json.dumps(document, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"cannot serialize document: {exc}") from exc


def loads(blob: bytes) -> dict:
    try:
        return json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SerializationError(f"corrupt blob: {exc}") from exc
