"""Parquet-like columnar format.

Parquet preserves the full integral lattice and TIMESTAMP_NTZ, allows
arbitrary map key types, and carries enough footer metadata for Spark's
case-sensitive schema inference (``caseSensitiveInferenceMode`` works
here, unlike Avro). It is the best-behaved lattice of the three, which
is exactly why several §8 discrepancies appear only under ORC/Avro.
"""

from __future__ import annotations

from repro.common.types import DataType, IntervalType
from repro.errors import UnsupportedTypeError
from repro.formats.base import Serializer

__all__ = ["ParquetSerializer"]


class ParquetSerializer(Serializer):
    format_name = "parquet"
    supports_native_schema_inference = True

    def physical_atomic(self, dtype: DataType) -> DataType:
        if isinstance(dtype, IntervalType):
            raise UnsupportedTypeError(
                "parquet has no representation for interval types"
            )
        return dtype
