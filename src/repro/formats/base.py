"""Serializer interface shared by the simulated storage formats.

A serializer owns two things:

* a **physical type lattice** — the mapping from logical column types to
  the types the format can actually store. Gaps and collapses in this
  lattice (Avro has no BYTE/SHORT; text has only strings) are the
  mechanism behind the paper's type-confusion discrepancies (Table 6).
* a **byte encoding** — ``write`` produces self-describing bytes whose
  header records the *physical* schema; ``read`` gives the physical
  schema and rows back. Reconciling physical schema against the table's
  logical schema is deliberately left to the reading engine, because
  Spark and Hive reconcile differently — that asymmetry is where
  SPARK-39075 lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.row import Row
from repro.common.schema import Field as SchemaField
from repro.common.schema import Schema
from repro.common.types import (
    ArrayType,
    DataType,
    MapType,
    StructField,
    StructType,
    parse_type,
)
from repro.errors import SerializationError, UnsupportedTypeError
from repro.formats import encoding

__all__ = ["Serializer", "TableData", "FORMAT_VERSION"]

FORMAT_VERSION = 1


@dataclass(frozen=True)
class TableData:
    """What :meth:`Serializer.read` returns: physical schema and rows."""

    format_name: str
    physical_schema: Schema
    rows: tuple[Row, ...]
    properties: dict[str, str] = field(default_factory=dict)


class Serializer:
    """Base class; concrete formats override the lattice hooks."""

    format_name: str = "abstract"
    #: Whether Spark can persist/recover its own case-sensitive schema for
    #: files of this format (``spark.sql.hive.caseSensitiveInferenceMode``
    #: works for ORC and Parquet but not Avro — §8.2, HIVE-26531 family).
    supports_native_schema_inference: bool = False
    #: Whether the *file's* schema overrides the DDL in the metastore
    #: (Avro tables take their schema from ``avro.schema.literal``, so a
    #: declared BYTE column is registered as the physical INT — the
    #: HIVE-26533 mechanism). Text files also collapse physically but the
    #: metastore keeps the declared types and the SerDe parses on read.
    file_schema_is_authoritative: bool = False

    # -- physical lattice ------------------------------------------------

    def physical_atomic(self, dtype: DataType) -> DataType:
        """Map one atomic logical type to its physical type.

        Subclasses override; raising :class:`UnsupportedTypeError` marks
        a gap in the lattice.
        """
        return dtype

    def check_map_key(self, key_type: DataType) -> None:
        """Hook for formats that restrict map key types (Avro)."""

    def physical_type(self, dtype: DataType) -> DataType:
        if isinstance(dtype, ArrayType):
            return ArrayType(self.physical_type(dtype.element_type))
        if isinstance(dtype, MapType):
            self.check_map_key(dtype.key_type)
            return MapType(
                self.physical_type(dtype.key_type),
                self.physical_type(dtype.value_type),
            )
        if isinstance(dtype, StructType):
            fields = tuple(
                StructField(f.name, self.physical_type(f.data_type), f.nullable)
                for f in dtype.fields
            )
            return StructType(fields)
        return self.physical_atomic(dtype)

    def physical_schema(self, schema: Schema) -> Schema:
        fields = tuple(
            SchemaField(f.name, self.physical_type(f.data_type), f.nullable)
            for f in schema.fields
        )
        return Schema(fields, case_sensitive=schema.case_sensitive)

    # -- value transforms --------------------------------------------------

    def to_physical(self, value: object, dtype: DataType) -> object:
        """Convert a logical value into the format's physical value."""
        if value is None:
            return None
        if isinstance(dtype, ArrayType):
            return [self.to_physical(v, dtype.element_type) for v in value]
        if isinstance(dtype, MapType):
            return {
                self.to_physical(k, dtype.key_type): self.to_physical(
                    v, dtype.value_type
                )
                for k, v in value.items()
            }
        if isinstance(dtype, StructType):
            items = value if not isinstance(value, dict) else [
                value[f.name] for f in dtype.fields
            ]
            return [
                self.to_physical(v, f.data_type)
                for v, f in zip(items, dtype.fields)
            ]
        return self.atomic_to_physical(value, dtype)

    def atomic_to_physical(self, value: object, dtype: DataType) -> object:
        return value

    # -- byte encoding ------------------------------------------------------

    def write(
        self,
        schema: Schema,
        rows: list[Row] | list[tuple],
        properties: dict[str, str] | None = None,
    ) -> bytes:
        physical = self.physical_schema(schema)
        encoded_rows = []
        for row in rows:
            values = list(row)
            if len(values) != len(schema):
                raise SerializationError(
                    f"row arity {len(values)} != schema arity {len(schema)}"
                )
            encoded_rows.append(
                [
                    encoding.encode_value(self.to_physical(v, f.data_type))
                    for v, f in zip(values, schema.fields)
                ]
            )
        document = {
            "version": FORMAT_VERSION,
            "format": self.format_name,
            "columns": [
                {
                    "name": f.name,
                    "type": f.data_type.simple_string(),
                    "nullable": f.nullable,
                }
                for f in physical.fields
            ],
            "properties": dict(properties or {}),
            "rows": encoded_rows,
        }
        return encoding.dumps(document)

    def read(self, blob: bytes) -> TableData:
        document = encoding.loads(blob)
        if document.get("format") != self.format_name:
            raise SerializationError(
                f"{self.format_name} reader got a "
                f"{document.get('format')!r} file"
            )
        fields = tuple(
            SchemaField(
                col["name"], parse_type(col["type"]), col.get("nullable", True)
            )
            for col in document["columns"]
        )
        physical = Schema(fields)
        rows = tuple(
            Row([encoding.decode_value(v) for v in row], physical)
            for row in document["rows"]
        )
        return TableData(
            format_name=self.format_name,
            physical_schema=physical,
            rows=rows,
            properties=dict(document.get("properties", {})),
        )

    @staticmethod
    def sniff_format(blob: bytes) -> str:
        """Read the format name from a blob header without a serializer."""
        return str(encoding.loads(blob).get("format", ""))
