"""Serializer interface shared by the simulated storage formats.

A serializer owns two things:

* a **physical type lattice** — the mapping from logical column types to
  the types the format can actually store. Gaps and collapses in this
  lattice (Avro has no BYTE/SHORT; text has only strings) are the
  mechanism behind the paper's type-confusion discrepancies (Table 6).
* a **byte encoding** — ``write`` produces self-describing bytes whose
  header records the *physical* schema; ``read`` gives the physical
  schema and rows back. Reconciling physical schema against the table's
  logical schema is deliberately left to the reading engine, because
  Spark and Hive reconcile differently — that asymmetry is where
  SPARK-39075 lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.row import Row
from repro.common.schema import Field as SchemaField
from repro.common.schema import Schema
from repro.common.types import (
    ArrayType,
    DataType,
    MapType,
    StructField,
    StructType,
    parse_type,
)
from repro.errors import SerializationError, UnsupportedTypeError
from repro.formats import encoding

__all__ = ["Serializer", "TableData", "FORMAT_VERSION"]

FORMAT_VERSION = 1

#: Bound on each serializer instance's schema/column-writer memos. The
#: cross-test corpus needs a few dozen entries; anything adversarial just
#: resets the memo instead of growing it.
_INSTANCE_CACHE_LIMIT = 256

#: Bound on the decoded-blob memo (one entry per distinct blob; the
#: cross-test corpus produces a couple of thousand small blobs).
_READ_CACHE_LIMIT = 4096


@dataclass(frozen=True)
class TableData:
    """What :meth:`Serializer.read` returns: physical schema and rows."""

    format_name: str
    physical_schema: Schema
    rows: tuple[Row, ...]
    properties: dict[str, str] = field(default_factory=dict)


class Serializer:
    """Base class; concrete formats override the lattice hooks."""

    format_name: str = "abstract"
    #: Whether Spark can persist/recover its own case-sensitive schema for
    #: files of this format (``spark.sql.hive.caseSensitiveInferenceMode``
    #: works for ORC and Parquet but not Avro — §8.2, HIVE-26531 family).
    supports_native_schema_inference: bool = False
    #: Whether the *file's* schema overrides the DDL in the metastore
    #: (Avro tables take their schema from ``avro.schema.literal``, so a
    #: declared BYTE column is registered as the physical INT — the
    #: HIVE-26533 mechanism). Text files also collapse physically but the
    #: metastore keeps the declared types and the SerDe parses on read.
    file_schema_is_authoritative: bool = False

    # -- physical lattice ------------------------------------------------

    def physical_atomic(self, dtype: DataType) -> DataType:
        """Map one atomic logical type to its physical type.

        Subclasses override; raising :class:`UnsupportedTypeError` marks
        a gap in the lattice.
        """
        return dtype

    def check_map_key(self, key_type: DataType) -> None:
        """Hook for formats that restrict map key types (Avro)."""

    def physical_type(self, dtype: DataType) -> DataType:
        if isinstance(dtype, ArrayType):
            return ArrayType(self.physical_type(dtype.element_type))
        if isinstance(dtype, MapType):
            self.check_map_key(dtype.key_type)
            return MapType(
                self.physical_type(dtype.key_type),
                self.physical_type(dtype.value_type),
            )
        if isinstance(dtype, StructType):
            fields = tuple(
                StructField(f.name, self.physical_type(f.data_type), f.nullable)
                for f in dtype.fields
            )
            return StructType(fields)
        return self.physical_atomic(dtype)

    def physical_schema(self, schema: Schema) -> Schema:
        cache = self.__dict__.setdefault("_physical_schema_cache", {})
        cached = cache.get(schema)
        if cached is None:
            fields = tuple(
                SchemaField(f.name, self.physical_type(f.data_type), f.nullable)
                for f in schema.fields
            )
            cached = Schema(fields, case_sensitive=schema.case_sensitive)
            if len(cache) >= _INSTANCE_CACHE_LIMIT:
                cache.clear()
            cache[schema] = cached
        return cached

    # -- value transforms --------------------------------------------------

    def to_physical(self, value: object, dtype: DataType) -> object:
        """Convert a logical value into the format's physical value."""
        if value is None:
            return None
        if isinstance(dtype, ArrayType):
            return [self.to_physical(v, dtype.element_type) for v in value]
        if isinstance(dtype, MapType):
            return {
                self.to_physical(k, dtype.key_type): self.to_physical(
                    v, dtype.value_type
                )
                for k, v in value.items()
            }
        if isinstance(dtype, StructType):
            items = value if not isinstance(value, dict) else [
                value[f.name] for f in dtype.fields
            ]
            return [
                self.to_physical(v, f.data_type)
                for v, f in zip(items, dtype.fields)
            ]
        return self.atomic_to_physical(value, dtype)

    def atomic_to_physical(self, value: object, dtype: DataType) -> object:
        return value

    # -- compiled write path ---------------------------------------------

    def _compile_physical(self, dtype: DataType):
        """Resolve the :meth:`to_physical` ladder for ``dtype`` once.

        Returns a closure equivalent to ``lambda v: self.to_physical(v,
        dtype)`` with the type dispatch already done. Subclasses that
        replace :meth:`to_physical` wholesale (text) fall back to calling
        their override, so compilation is always semantics-preserving.
        """
        if type(self).to_physical is not Serializer.to_physical:
            return lambda value: self.to_physical(value, dtype)
        if isinstance(dtype, ArrayType):
            element = self._compile_physical(dtype.element_type)
            return lambda value: (
                None if value is None else [element(v) for v in value]
            )
        if isinstance(dtype, MapType):
            key = self._compile_physical(dtype.key_type)
            val = self._compile_physical(dtype.value_type)
            return lambda value: (
                None
                if value is None
                else {key(k): val(v) for k, v in value.items()}
            )
        if isinstance(dtype, StructType):
            names = [f.name for f in dtype.fields]
            children = [self._compile_physical(f.data_type) for f in dtype.fields]

            def convert_struct(value: object) -> object:
                if value is None:
                    return None
                items = (
                    value
                    if not isinstance(value, dict)
                    else [value[name] for name in names]
                )
                return [child(v) for v, child in zip(items, children)]

            return convert_struct
        return lambda value: (
            None if value is None else self.atomic_to_physical(value, dtype)
        )

    def _cell_writer(self, dtype: DataType):
        """``encode_value ∘ to_physical`` for one column, memoized."""
        cache = self.__dict__.setdefault("_cell_writer_cache", {})
        writer = cache.get(dtype)
        if writer is None:
            convert = self._compile_physical(dtype)
            encode = encoding.encode_value

            def writer(value: object) -> object:
                return encode(convert(value))

            if len(cache) >= _INSTANCE_CACHE_LIMIT:
                cache.clear()
            cache[dtype] = writer
        return writer

    # -- byte encoding ------------------------------------------------------

    def _write_plan(self, schema: Schema):
        """``(cell writers, columns header)`` for one schema, memoized.

        Both are pure functions of the logical schema — the writers via
        the physical lattice, the header via :meth:`physical_schema` —
        but building them per :meth:`write` call showed up once batched
        deployment lanes made writes append-heavy (every multi-row
        INSERT of a lane re-derived the identical header). The header is
        shared across documents; ``write`` treats it as immutable.
        """
        cache = self.__dict__.setdefault("_write_plan_cache", {})
        plan = cache.get(schema)
        if plan is None:
            physical = self.physical_schema(schema)
            writers = tuple(
                self._cell_writer(f.data_type) for f in schema.fields
            )
            columns = [
                {
                    "name": f.name,
                    "type": f.data_type.simple_string(),
                    "nullable": f.nullable,
                }
                for f in physical.fields
            ]
            plan = (writers, columns)
            if len(cache) >= _INSTANCE_CACHE_LIMIT:
                cache.clear()
            cache[schema] = plan
        return plan

    def write(
        self,
        schema: Schema,
        rows: list[Row] | list[tuple],
        properties: dict[str, str] | None = None,
    ) -> bytes:
        writers, columns = self._write_plan(schema)
        arity = len(schema)
        encoded_rows = []
        for row in rows:
            values = list(row)
            if len(values) != arity:
                raise SerializationError(
                    f"row arity {len(values)} != schema arity {arity}"
                )
            encoded_rows.append(
                [writer(v) for writer, v in zip(writers, values)]
            )
        document = {
            "version": FORMAT_VERSION,
            "format": self.format_name,
            "columns": columns,
            "properties": dict(properties or {}),
            "rows": encoded_rows,
        }
        return encoding.dumps(document)

    def read(self, blob: bytes) -> TableData:
        """Decode a blob, memoized by its bytes.

        Blobs are immutable once written and decoding is deterministic,
        so identical blobs (the same value round-tripped by different
        plans) share one :class:`TableData`. Callers treat the result as
        read-only — nothing in either engine mutates a decoded
        ``TableData`` (the unified layer copies ``properties`` before
        editing).
        """
        cache = self.__dict__.setdefault("_read_cache", {})
        data = cache.get(blob)
        if data is None:
            data = self._read_uncached(blob)
            if len(cache) >= _READ_CACHE_LIMIT:
                cache.clear()
            cache[blob] = data
        return data

    def _read_uncached(self, blob: bytes) -> TableData:
        document = encoding.loads(blob)
        if document.get("format") != self.format_name:
            raise SerializationError(
                f"{self.format_name} reader got a "
                f"{document.get('format')!r} file"
            )
        fields = tuple(
            SchemaField(
                col["name"], parse_type(col["type"]), col.get("nullable", True)
            )
            for col in document["columns"]
        )
        physical = Schema(fields)
        rows = tuple(
            Row([encoding.decode_value(v) for v in row], physical)
            for row in document["rows"]
        )
        return TableData(
            format_name=self.format_name,
            physical_schema=physical,
            rows=rows,
            properties=dict(document.get("properties", {})),
        )

    @staticmethod
    def sniff_format(blob: bytes) -> str:
        """Read the format name from a blob header without a serializer."""
        return str(encoding.loads(blob).get("format", ""))
