"""Avro-like row format.

Two real properties of Avro's type lattice drive §8 discrepancies:

* Avro has no 1- or 2-byte integer types, so BYTE and SHORT columns are
  **promoted to INT on write**. Whether a reader demotes them back is up
  to the reading engine — Spark's Avro reader historically did not and
  raised ``IncompatibleSchemaException`` (SPARK-39075, discrepancy #1).
* Avro map keys **must be strings** (HIVE-26531, discrepancy #4) —
  unlike ORC and Parquet, which accept any key type.

Avro also cannot carry Spark's case-sensitive native schema metadata, so
``spark.sql.hive.caseSensitiveInferenceMode`` has no effect for
Avro-backed tables (part of the "exposing internal configurations"
family in §8.2).
"""

from __future__ import annotations

from repro.common.types import (
    ByteType,
    CharType,
    DataType,
    IntegerType,
    IntervalType,
    ShortType,
    StringType,
    TimestampNTZType,
    TimestampType,
    VarcharType,
)
from repro.errors import UnsupportedTypeError
from repro.formats.base import Serializer

__all__ = ["AvroSerializer"]


class AvroSerializer(Serializer):
    format_name = "avro"
    supports_native_schema_inference = False
    file_schema_is_authoritative = True

    def physical_atomic(self, dtype: DataType) -> DataType:
        if isinstance(dtype, (ByteType, ShortType)):
            # Avro's smallest integer is 32-bit: silent promotion.
            return IntegerType()
        if isinstance(dtype, (CharType, VarcharType)):
            return StringType()
        if isinstance(dtype, TimestampNTZType):
            # Avro logical types only define timestamp-with-instant
            # semantics; NTZ collapses into it.
            return TimestampType()
        if isinstance(dtype, IntervalType):
            raise UnsupportedTypeError(
                "avro has no representation for interval types"
            )
        return dtype

    def check_map_key(self, key_type: DataType) -> None:
        if not isinstance(key_type, (StringType, CharType, VarcharType)):
            raise UnsupportedTypeError(
                "avro maps support only string keys, got "
                f"{key_type.simple_string()}"
            )
