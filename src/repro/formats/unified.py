"""A unified serialization layer — the mitigation §10 proposes.

    "One could develop and promote unified serialization libraries that
    support complex data abstractions ..."

:class:`UnifiedSerializer` wraps any base format and closes its lattice
gaps mechanically:

* the full **logical schema** travels in the file properties, so types
  the base format collapses (BYTE/SHORT under Avro, TIMESTAMP_NTZ,
  CHAR/VARCHAR) are restored on read instead of leaking the physical
  type;
* **non-string map keys** are transported as tagged JSON strings and
  decoded against the logical schema, so Avro's string-key restriction
  stops being an interoperability cliff (HIVE-26531);
* values are demoted back to their logical types on read (an INT that
  was a BYTE at write time comes back a BYTE).

The cross-test ablation (``benchmarks/test_bench_unified.py``) measures
exactly how many of the paper's 15 discrepancies this one layer removes.
"""

from __future__ import annotations

import json

from repro.common.row import Row
from repro.common.schema import Field, Schema
from repro.common.types import (
    ArrayType,
    ByteType,
    CharType,
    DataType,
    IntegerType,
    MapType,
    ShortType,
    StringType,
    StructField,
    StructType,
    VarcharType,
    parse_type,
)
from repro.errors import SerializationError
from repro.formats import encoding
from repro.formats.base import Serializer, TableData

__all__ = ["UnifiedSerializer", "LOGICAL_SCHEMA_PROPERTY"]

LOGICAL_SCHEMA_PROPERTY = "unified.logical.schema"


def _portable_type(dtype: DataType) -> DataType:
    """Rewrite types every base format can carry."""
    if isinstance(dtype, MapType):
        value = _portable_type(dtype.value_type)
        if isinstance(dtype.key_type, (StringType, CharType, VarcharType)):
            return MapType(StringType(), value)
        # non-string keys travel as tagged JSON strings
        return MapType(StringType(), value)
    if isinstance(dtype, ArrayType):
        return ArrayType(_portable_type(dtype.element_type))
    if isinstance(dtype, StructType):
        return StructType(
            tuple(
                StructField(f.name, _portable_type(f.data_type), f.nullable)
                for f in dtype.fields
            )
        )
    return dtype


def _needs_key_encoding(dtype: DataType) -> bool:
    return isinstance(dtype, MapType) and not isinstance(
        dtype.key_type, (StringType, CharType, VarcharType)
    )


def _encode_portable(value: object, dtype: DataType) -> object:
    if value is None:
        return None
    if isinstance(dtype, MapType):
        encode_key = _needs_key_encoding(dtype)
        return {
            (
                json.dumps(encoding.encode_value(k))
                if encode_key
                else k
            ): _encode_portable(v, dtype.value_type)
            for k, v in value.items()
        }
    if isinstance(dtype, ArrayType):
        return [_encode_portable(v, dtype.element_type) for v in value]
    if isinstance(dtype, StructType):
        items = value if not isinstance(value, dict) else [
            value[f.name] for f in dtype.fields
        ]
        return [
            _encode_portable(v, f.data_type)
            for v, f in zip(items, dtype.fields)
        ]
    return value


def _restore(value: object, logical: DataType) -> object:
    """Demote a physical value back to its logical type."""
    if value is None:
        return None
    if isinstance(logical, (ByteType, ShortType, IntegerType)):
        return value  # already in range: it was written from this type
    if isinstance(logical, MapType):
        decode_key = _needs_key_encoding(logical)
        restored = {}
        for key, val in value.items():
            if decode_key:
                key = encoding.decode_value(json.loads(key))
            restored[key] = _restore(val, logical.value_type)
        return restored
    if isinstance(logical, ArrayType):
        return [_restore(v, logical.element_type) for v in value]
    if isinstance(logical, StructType):
        return [
            _restore(v, f.data_type)
            for v, f in zip(value, logical.fields)
        ]
    return value


class UnifiedSerializer(Serializer):
    """A base serializer plus a logical-schema side channel."""

    supports_native_schema_inference = True

    def __init__(self, base: Serializer) -> None:
        self.base = base
        self.format_name = f"unified_{base.format_name}"

    # the unified layer has no lattice gaps of its own
    def physical_atomic(self, dtype: DataType) -> DataType:
        return dtype

    def physical_type(self, dtype: DataType) -> DataType:
        return dtype

    def physical_schema(self, schema: Schema) -> Schema:
        return schema

    def write(
        self,
        schema: Schema,
        rows,
        properties: dict[str, str] | None = None,
    ) -> bytes:
        portable = Schema(
            tuple(
                Field(f.name, _portable_type(f.data_type), f.nullable)
                for f in schema.fields
            ),
            case_sensitive=schema.case_sensitive,
        )
        encoded_rows = [
            tuple(
                _encode_portable(v, f.data_type)
                for v, f in zip(row, schema.fields)
            )
            for row in rows
        ]
        merged = dict(properties or {})
        merged[LOGICAL_SCHEMA_PROPERTY] = json.dumps(
            [
                {"name": f.name, "type": f.data_type.simple_string()}
                for f in schema.fields
            ]
        )
        blob = self.base.write(portable, encoded_rows, merged)
        # re-tag the header so readers dispatch to the unified layer
        document = encoding.loads(blob)
        document["format"] = self.format_name
        return encoding.dumps(document)

    def read(self, blob: bytes) -> TableData:
        document = encoding.loads(blob)
        if document.get("format") != self.format_name:
            raise SerializationError(
                f"{self.format_name} reader got a "
                f"{document.get('format')!r} file"
            )
        document["format"] = self.base.format_name
        data = self.base.read(encoding.dumps(document))
        raw = data.properties.get(LOGICAL_SCHEMA_PROPERTY)
        if raw is None:
            return data  # plain file written without the unified layer
        logical = Schema(
            tuple(
                Field(col["name"], parse_type(col["type"]))
                for col in json.loads(raw)
            ),
            case_sensitive=True,
        )
        rows = tuple(
            Row(
                [
                    _restore(v, f.data_type)
                    for v, f in zip(row, logical.fields)
                ],
                logical,
            )
            for row in data.rows
        )
        properties = dict(data.properties)
        properties.pop(LOGICAL_SCHEMA_PROPERTY, None)
        return TableData(
            format_name=self.format_name,
            physical_schema=logical,
            rows=rows,
            properties=properties,
        )
