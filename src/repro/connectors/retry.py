"""Retry/timeout/backoff policy for boundary calls.

The paper's mis-handled CSI failures are mostly *absent* handling: a
transient peer hiccup crosses the boundary raw and becomes the caller's
crash. :class:`RetryPolicy` is the present-handling counterpart — it
wraps one boundary call, absorbs :class:`TransientFault` injections up
to an attempt cap and a simulated-backoff budget, and converts
exhaustion into a *typed* :class:`BoundaryError` so the caller sees a
connector-vocabulary failure rather than a transport internal.

Backoff is jittered exponential but **simulated**: the computed sleep
is accumulated in the stats (and annotated on the surrounding span),
never actually slept, so fault runs stay fast and wall-clock stays out
of the determinism footprint. Jitter comes from the injected fault's
own decision hash, not a live RNG.

Stats are per-policy-instance (one policy per connector, one connector
per deployment), so the cross-test executor can read race-free
per-trial deltas while the deployment is leased — the same discipline
``_plan_cache_counts`` uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.faults.core import FaultAction, fault_point
from repro.faults.errors import (
    BoundaryTimeout,
    BoundaryUnavailable,
    TransientFault,
)
from repro.tracing.core import event as trace_event

__all__ = ["RetryStats", "RetryPolicy"]

T = TypeVar("T")


@dataclass
class RetryStats:
    """Counters for one policy instance; read as per-trial deltas."""

    attempts: int = 0
    faults: int = 0
    masked_calls: int = 0
    exhausted_calls: int = 0
    backoff_s: float = 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "boundary_attempts": self.attempts,
            "boundary_faults": self.faults,
            "boundary_masked_calls": self.masked_calls,
            "boundary_exhausted_calls": self.exhausted_calls,
        }


@dataclass
class RetryPolicy:
    """Bounded, jittered-exponential retry for one connector's calls."""

    max_attempts: int = 3
    base_backoff_s: float = 0.05
    max_backoff_s: float = 1.0
    backoff_budget_s: float = 5.0

    def __post_init__(self) -> None:
        self.stats = RetryStats()

    def call(
        self,
        fn: Callable[[FaultAction | None], T],
        *,
        site: str,
        operation: str = "",
        cooperative: tuple[str, ...] = (),
    ) -> T:
        """Run one boundary call under this policy.

        ``fn`` receives the cooperative :class:`FaultAction` decided at
        the fault point (or ``None``), so sites that support torn/stale
        behavior can apply it inside the guarded body.
        """
        spent_backoff = 0.0
        faults_seen = 0
        last_fault: TransientFault | None = None
        attempt = 0
        while True:
            attempt += 1
            self.stats.attempts += 1
            try:
                action = fault_point(site, operation, cooperative)
                result = fn(action)
            except TransientFault as fault:
                faults_seen += 1
                self.stats.faults += 1
                last_fault = fault
                trace_event(
                    "boundary.fault",
                    site=site,
                    operation=operation,
                    kind=fault.fault_kind,
                    attempt=attempt,
                )
                backoff = min(
                    self.max_backoff_s,
                    self.base_backoff_s * 2.0 ** (attempt - 1),
                ) * (0.5 + 0.5 * fault.jitter)
                over_budget = (
                    spent_backoff + backoff > self.backoff_budget_s
                )
                if attempt >= self.max_attempts or over_budget:
                    self.stats.exhausted_calls += 1
                    trace_event(
                        "boundary.retries_exhausted",
                        site=site,
                        operation=operation,
                        kind=fault.fault_kind,
                        attempts=attempt,
                        over_budget=over_budget,
                    )
                    if fault.fault_kind == "timeout":
                        raise BoundaryTimeout(
                            site, operation, attempts=attempt
                        ) from fault
                    raise BoundaryUnavailable(
                        site, operation, attempts=attempt
                    ) from fault
                spent_backoff += backoff
                self.stats.backoff_s += backoff
                trace_event(
                    "boundary.retry",
                    site=site,
                    operation=operation,
                    attempt=attempt,
                    backoff_s=round(backoff, 6),
                )
                continue
            if faults_seen:
                self.stats.masked_calls += 1
                trace_event(
                    "boundary.fault_masked",
                    site=site,
                    operation=operation,
                    kind=(
                        last_fault.fault_kind if last_fault else "fault"
                    ),
                    attempts=attempt,
                    backoff_s=round(spent_backoff, 6),
                )
            return result
