"""The Spark→Hive connector: registration and schema resolution.

Finding 13 of the paper: 68/79 upstream-side CSI fixes landed in
dedicated connector modules. This module is that connector for the
simulation — every piece of Spark↔Hive schema translation lives here,
and each documented quirk is implemented as the *mechanism* the real
systems have:

* a table created through the **DataFrame API** is a *datasource table*:
  Spark always stashes its own case-sensitive schema in the table
  properties (``spark.sql.sources.schema``);
* a table created through **SparkSQL** with ``STORED AS`` goes down the
  Hive-serde path: the native schema property can only be kept for
  formats whose files can back schema inference
  (``caseSensitiveInferenceMode``; ORC and Parquet yes, Avro no);
* when no native schema is recoverable, Spark **falls back to the Hive
  metastore schema** — lower-cased names, physically-collapsed types —
  and warns "not case preserving" (HIVE-26533 / SPARK-40409).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.common.schema import Field, Schema
from repro.connectors.retry import RetryPolicy
from repro.common.types import (
    CharType,
    StringType,
    TimestampNTZType,
    TimestampType,
    VarcharType,
    parse_type,
)
from repro.errors import SchemaError, TableNotFoundError
from repro.faults.core import FaultAction
from repro.formats import serializer_for
from repro.hivelite.metastore import HiveMetastore, Table
from repro.hivelite.types import metastore_schema_for
from repro.sparklite.conf import SparkConf
from repro.tracing.core import event as trace_event
from repro.tracing.core import span as trace_span

__all__ = [
    "NATIVE_SCHEMA_PROPERTY",
    "NOT_CASE_PRESERVING_WARNING",
    "CreateSpec",
    "ResolvedTable",
    "SparkHiveConnector",
    "schema_to_property",
    "schema_from_property",
]

NATIVE_SCHEMA_PROPERTY = "spark.sql.sources.schema"
NOT_CASE_PRESERVING_WARNING = (
    "The table schema is read from the Hive metastore, which is not case "
    "preserving; falling back to the lower-cased Hive schema."
)


def schema_to_property(schema: Schema) -> str:
    """Serialize a case-sensitive schema into a table-property string."""
    return json.dumps(
        [
            {
                "name": f.name,
                "type": f.data_type.simple_string(),
                "nullable": f.nullable,
            }
            for f in schema.fields
        ],
        separators=(",", ":"),
    )


def schema_from_property(text: str) -> Schema:
    try:
        raw = json.loads(text)
        fields = tuple(
            Field(col["name"], parse_type(col["type"]), col.get("nullable", True))
            for col in raw
        )
    except (ValueError, KeyError, TypeError) as exc:
        raise SchemaError(f"corrupt native schema property: {exc}") from exc
    return Schema(fields, case_sensitive=True)


@dataclass(frozen=True)
class ResolvedTable:
    """A Hive table as Spark sees it after schema resolution."""

    table: Table
    schema: Schema
    used_native_schema: bool
    warnings: tuple[str, ...] = ()


@dataclass(frozen=True)
class CreateSpec:
    """A fully analyzed CREATE TABLE, ready to register.

    Everything catalog-independent — the metastore-side schema, the
    native schema property, the lower-cased partition schema — is
    computed once at prepare time, so a cached CREATE plan replays as a
    single :meth:`HiveMetastore.create_table` call. Existence checks
    stay in the metastore, at execute time.
    """

    name: str
    schema: Schema
    storage_format: str
    database: str
    properties: tuple[tuple[str, str], ...]
    if_not_exists: bool
    partition_schema: Schema


#: entries kept in the per-connector resolve memo before it is cleared
_RESOLVE_MEMO_LIMIT = 64

#: entries kept in the per-connector prepare_create memo (one per
#: distinct created-table shape) before it is cleared
_PREPARE_MEMO_LIMIT = 512


@dataclass
class SparkHiveConnector:
    metastore: HiveMetastore
    conf: SparkConf
    #: (database, table) -> ((catalog_version, conf fingerprint), ResolvedTable)
    _resolve_memo: dict = field(default_factory=dict)
    #: full prepare_create argument tuple -> (conf fingerprint, CreateSpec)
    _prepare_memo: dict = field(default_factory=dict)
    #: retry/backoff policy for every metastore-facing call; stats are
    #: per-connector (= per-deployment), so the executor can read
    #: race-free per-trial deltas while the deployment is leased
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    # -- table creation ----------------------------------------------------

    def prepare_create(
        self,
        name: str,
        declared: Schema,
        storage_format: str,
        *,
        database: str,
        datasource: bool,
        if_not_exists: bool = False,
        extra_properties: dict[str, str] | None = None,
        partition_schema: Schema = Schema(()),
    ) -> CreateSpec:
        """Analyze a CREATE TABLE down to a replayable :class:`CreateSpec`."""
        serializer = serializer_for(storage_format)
        hive_side = metastore_schema_for(declared, serializer)
        properties = dict(extra_properties or {})
        if self._keeps_native_schema(datasource, serializer):
            properties[NATIVE_SCHEMA_PROPERTY] = schema_to_property(declared)
        return CreateSpec(
            name=name,
            schema=hive_side,
            storage_format=storage_format,
            database=database,
            properties=tuple(sorted(properties.items())),
            if_not_exists=if_not_exists,
            partition_schema=partition_schema.lower_cased()
            if len(partition_schema)
            else partition_schema,
        )

    def execute_create(self, spec: CreateSpec) -> Table:
        """Register a prepared CREATE with the metastore.

        The first execution runs the metastore's fully validated
        creation path; the identical frozen ``Table`` it produced is
        then re-registered directly on every replay of the cached plan.
        """
        with trace_span(
            "spark.metastore.create_table",
            system="spark",
            peer_system="hive-metastore",
            operation="create_table",
            boundary="spark->metastore",
        ) as sp:
            if sp is not None:
                sp.attributes.update(
                    table=spec.name,
                    database=spec.database,
                    fmt=spec.storage_format,
                    native_schema_property=any(
                        key == NATIVE_SCHEMA_PROPERTY
                        for key, _ in spec.properties
                    ),
                )
            def attempt(action: FaultAction | None) -> Table:
                table = spec.__dict__.get("_table")
                if table is not None:
                    trace_event("create.replayed")
                    return self.metastore.register_table(
                        table, if_not_exists=spec.if_not_exists
                    )
                existed = self.metastore.table_exists(
                    spec.name, spec.database
                )
                created = self.metastore.create_table(
                    spec.name,
                    spec.schema,
                    spec.storage_format,
                    database=spec.database,
                    properties=dict(spec.properties),
                    owner="spark",
                    if_not_exists=spec.if_not_exists,
                    partition_schema=spec.partition_schema,
                )
                if not existed:
                    object.__setattr__(spec, "_table", created)
                return created

            return self.retry.call(
                attempt,
                site="spark->metastore",
                operation="create_table",
            )

    def create_table(
        self,
        name: str,
        declared: Schema,
        storage_format: str,
        *,
        database: str,
        datasource: bool,
        if_not_exists: bool = False,
        extra_properties: dict[str, str] | None = None,
        partition_schema: Schema = Schema(()),
    ) -> Table:
        """Register a Spark-created table with the Hive metastore.

        Analysis is memoized per argument shape (stamped with the conf
        fingerprint, since ``caseSensitiveInferenceMode`` feeds the
        native-schema decision), so the DataFrame writer — which has no
        statement text for the plan cache to key on — still replays the
        same :class:`CreateSpec` and gets the registration fast path.
        """
        key = (
            name,
            declared,
            storage_format,
            database,
            datasource,
            if_not_exists,
            tuple(sorted((extra_properties or {}).items())),
            partition_schema,
        )
        stamp = self.conf.fingerprint()
        memo = self._prepare_memo.get(key)
        if memo is not None and memo[0] == stamp:
            spec = memo[1]
            trace_event(
                "spark.create.memo_hit", conf_fingerprint=str(stamp)
            )
        else:
            trace_event(
                "spark.create.memo_miss", conf_fingerprint=str(stamp)
            )
            spec = self.prepare_create(
                name,
                declared,
                storage_format,
                database=database,
                datasource=datasource,
                if_not_exists=if_not_exists,
                extra_properties=extra_properties,
                partition_schema=partition_schema,
            )
            if len(self._prepare_memo) >= _PREPARE_MEMO_LIMIT:
                self._prepare_memo.clear()
            self._prepare_memo[key] = (stamp, spec)
        return self.execute_create(spec)

    def _keeps_native_schema(self, datasource: bool, serializer) -> bool:
        if datasource:
            # Datasource tables always carry Spark's schema property.
            return True
        mode = self.conf.case_sensitive_inference_mode.upper()
        if mode == "NEVER_INFER":
            return False
        # Hive-serde tables: the property is only trustworthy if it can be
        # (re-)inferred from the files — possible for ORC/Parquet only.
        return serializer.supports_native_schema_inference

    # -- schema resolution ---------------------------------------------------

    def resolve(self, name: str, database: str) -> ResolvedTable:
        """Resolve the Spark-visible schema for a Hive table.

        Resolutions are memoized per ``(database, table)`` and stamped
        with ``(interned table state, conf fingerprint)``: the metastore
        interns every distinct frozen ``Table`` value to a token, so the
        stamp moves exactly when the table's own definition (or the
        session conf) does — dropping and recreating an identical table
        keeps the memo warm, while any visible change misses. A missing
        table has no state token and is never memoized.
        """
        with trace_span(
            "spark.metastore.resolve",
            system="spark",
            peer_system="hive-metastore",
            operation="resolve",
            boundary="spark->metastore",
        ) as sp:
            memo_hit = False

            def attempt(action: FaultAction | None) -> ResolvedTable:
                nonlocal memo_hit
                if action is not None and action.kind == "stale_read":
                    # the lookup lands on a metastore snapshot from
                    # before this table existed: same typed error, wrong
                    # reason — the caller cannot tell the difference
                    trace_event(
                        "fault.stale_read", table=name, database=database
                    )
                    raise TableNotFoundError(
                        f"table {database}.{name} not found"
                    )
                key = (database.lower(), name.lower())
                state = self.metastore.table_state(name, database)
                if state is None:
                    return self._resolve_fresh(name, database)
                stamp = (state, self.conf.fingerprint())
                memo = self._resolve_memo.get(key)
                if memo is not None and memo[0] == stamp:
                    memo_hit = True
                    return memo[1]
                fresh = self._resolve_fresh(name, database)
                if len(self._resolve_memo) >= _RESOLVE_MEMO_LIMIT:
                    self._resolve_memo.clear()
                self._resolve_memo[key] = (stamp, fresh)
                return fresh

            resolved = self.retry.call(
                attempt,
                site="spark->metastore",
                operation="resolve",
                cooperative=("stale_read",),
            )
            if sp is not None:
                sp.attributes.update(
                    table=name,
                    database=database,
                    memo_hit=memo_hit,
                    used_native_schema=resolved.used_native_schema,
                    not_case_preserving=not resolved.used_native_schema,
                )
            return resolved

    def _resolve_fresh(self, name: str, database: str) -> ResolvedTable:
        table = self.metastore.get_table(name, database)
        warnings: list[str] = []
        native = table.property(NATIVE_SCHEMA_PROPERTY)
        if native is not None:
            schema = schema_from_property(native)
            used_native = True
        else:
            schema = self._fallback_schema(table)
            used_native = False
            warnings.append(NOT_CASE_PRESERVING_WARNING)
        schema = self._apply_session_types(schema)
        return ResolvedTable(
            table=table,
            schema=schema,
            used_native_schema=used_native,
            warnings=tuple(warnings),
        )

    def _fallback_schema(self, table: Table) -> Schema:
        """Metastore schema, reinterpreted under session settings."""
        schema = table.schema.with_case_sensitivity(False)
        if self.conf.timestamp_type == "TIMESTAMP_NTZ":
            schema = schema.map_types(_timestamp_to_ntz)
        return schema

    def _apply_session_types(self, schema: Schema) -> Schema:
        if self.conf.char_varchar_as_string:
            schema = schema.map_types(_char_varchar_to_string)
        return schema


def _timestamp_to_ntz(dtype):
    if isinstance(dtype, TimestampType):
        return TimestampNTZType()
    return dtype


def _char_varchar_to_string(dtype):
    if isinstance(dtype, (CharType, VarcharType)):
        return StringType()
    return dtype
