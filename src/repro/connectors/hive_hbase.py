"""Hive's HBase storage handler — the Hive→HBase data interaction.

HBase cells are untyped strings; Hive lays a typed schema over them
(the real ``HBaseStorageHandler`` with ``hbase.columns.mapping``). Every
cell read is therefore a string→declared-type coercion through Hive's
lenient cast — the place where a typed system's expectations meet a
schemaless store. A cell that does not parse as its declared type reads
as NULL, silently (Table 6's "type confusion" family for the KV-backed
tables the paper counts under Hive→HBase).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.result import QueryResult
from repro.common.row import Row
from repro.common.schema import Schema
from repro.connectors.retry import RetryPolicy
from repro.errors import SchemaError
from repro.hbaselite.master import HBaseMaster
from repro.hivelite.casts import hive_write_cast
from repro.tracing.core import event as trace_event
from repro.tracing.core import span as trace_span

__all__ = ["HBaseColumnMapping", "HiveHBaseHandler"]

ROW_KEY = ":key"


@dataclass(frozen=True)
class HBaseColumnMapping:
    """``hbase.columns.mapping``: one HBase column per Hive column.

    The first mapped column is conventionally ``:key`` (the row key).
    """

    entries: tuple[str, ...]

    @classmethod
    def parse(cls, text: str) -> "HBaseColumnMapping":
        entries = tuple(part.strip() for part in text.split(","))
        if not entries or not all(entries):
            raise SchemaError(f"bad hbase.columns.mapping: {text!r}")
        return cls(entries)

    def validate_against(self, schema: Schema) -> None:
        if len(self.entries) != len(schema):
            raise SchemaError(
                f"mapping has {len(self.entries)} columns, schema has "
                f"{len(schema)}"
            )


@dataclass
class HiveHBaseHandler:
    """Read/write a typed Hive schema over an HBase table."""

    hbase: HBaseMaster
    table: str
    schema: Schema
    mapping: HBaseColumnMapping
    #: retry/backoff for every region-server call; injected transient
    #: faults under the budget are masked, exhaustion surfaces as a
    #: typed BoundaryError instead of a raw transport fault
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        self.mapping.validate_against(self.schema)
        if not self.hbase.table_exists(self.table):
            self.hbase.create_table(self.table)

    def insert(self, rows: list[tuple]) -> None:
        with trace_span(
            "hive.hbase.put",
            system="hive",
            peer_system="hbase",
            operation="put",
            boundary="hive->hbase",
        ) as sp:
            if sp is not None:
                sp.attributes.update(table=self.table, rows=len(rows))
            self.retry.call(
                lambda action: self._insert(rows),
                site="hive->hbase",
                operation="put",
            )

    def _insert(self, rows: list[tuple]) -> None:
        region = self.hbase.table(self.table)
        for row in rows:
            if len(row) != len(self.schema):
                raise SchemaError(
                    f"row arity {len(row)} != schema arity {len(self.schema)}"
                )
            row_key = None
            columns: dict[str, str] = {}
            for value, hbase_col in zip(row, self.mapping.entries):
                text = "" if value is None else str(value)
                if hbase_col == ROW_KEY:
                    row_key = text
                else:
                    columns[hbase_col] = text
            if not row_key:
                raise SchemaError("row key column cannot be NULL/empty")
            region.put(row_key, columns)

    def select_all(self) -> QueryResult:
        with trace_span(
            "hive.hbase.scan",
            system="hive",
            peer_system="hbase",
            operation="scan",
            boundary="hive->hbase",
        ) as sp:
            region = self.hbase.table(self.table)
            rows_read = self.retry.call(
                lambda action: list(region.scan()),
                site="hive->hbase",
                operation="scan",
            )
            out: list[Row] = []
            nulled = 0
            for row_key, cells in rows_read:
                values = []
                for field, hbase_col in zip(
                    self.schema.fields, self.mapping.entries
                ):
                    raw = (
                        row_key if hbase_col == ROW_KEY else cells.get(hbase_col)
                    )
                    # the typed-over-untyped coercion: lenient, NULL on failure
                    cast = (
                        None
                        if raw is None
                        else hive_write_cast(raw, field.data_type)
                    )
                    if raw is not None and cast is None:
                        nulled += 1
                        trace_event(
                            "cast.nulled",
                            column=field.name,
                            declared_type=field.data_type.simple_string(),
                        )
                    values.append(cast)
                out.append(Row(values, self.schema))
            if sp is not None:
                sp.attributes.update(
                    table=self.table, rows=len(out), cells_nulled=nulled
                )
            return QueryResult(
                schema=self.schema, rows=tuple(out), interface="hive-hbase"
            )
