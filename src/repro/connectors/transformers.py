"""Object transformers: Spark's per-type converters for Hive data.

§6.1 of the paper notes that "to read Hive table data, Spark implements
45 unique object transformers". This module is that layer for the
simulation: given a *physical* type read from a file and the *expected*
Spark type, it produces the function that converts each cell — or
raises :class:`IncompatibleSchemaException` where the real reader does.

The one deliberate hole matches SPARK-39075 (discrepancy #1): the Avro
reader has no INT → BYTE/SHORT demotion transformer, so a BYTE column
that Avro physically promoted to INT on write cannot be read back.
"""

from __future__ import annotations

import datetime
import decimal
import functools
from collections.abc import Callable

from repro.common.types import (
    ArrayType,
    BinaryType,
    BooleanType,
    CharType,
    DataType,
    DateType,
    DecimalType,
    DoubleType,
    FloatType,
    MapType,
    StringType,
    StructType,
    TimestampNTZType,
    TimestampType,
    VarcharType,
    is_integral,
)
from repro.errors import IncompatibleSchemaException

__all__ = ["transformer_for", "transform_value", "TRANSFORMER_COUNT"]

Transform = Callable[[object], object]

_INTEGRAL_ORDER = ["tinyint", "smallint", "int", "bigint"]


def _identity(value: object) -> object:
    return value


def _widen_to_float(value: object) -> object:
    return float(value)


def _demote_integral(target: DataType) -> Transform:
    def demote(value: object) -> object:
        return value if target.accepts(value) else None

    return demote


def _requantize(target: DecimalType) -> Transform:
    def requantize(value: object) -> object:
        quantized = value.quantize(
            decimal.Decimal(1).scaleb(-target.scale),
            rounding=decimal.ROUND_HALF_UP,
        )
        return quantized if target.accepts(quantized) else None

    return requantize


def _strip_tz(value: object) -> object:
    if isinstance(value, datetime.datetime) and value.tzinfo is not None:
        return value.replace(tzinfo=None)
    return value


@functools.lru_cache(maxsize=4096)
def transformer_for(
    physical: DataType, expected: DataType, format_name: str
) -> Transform:
    """Return the cell transformer, or raise for unconvertible pairs.

    Transformers are pure functions of the ``(physical, expected,
    format)`` triple, so the dispatch is memoized; incompatible pairs
    re-raise per call (``lru_cache`` never caches exceptions), exactly
    like the uncached dispatch.
    """
    if physical == expected:
        if isinstance(expected, (ArrayType, MapType, StructType)):
            return _nested(physical, expected, format_name)
        return _identity

    # integral-to-integral
    if is_integral(physical) and is_integral(expected):
        widening = _INTEGRAL_ORDER.index(
            physical.name
        ) <= _INTEGRAL_ORDER.index(expected.name)
        if widening:
            return _identity
        if format_name == "avro":
            # SPARK-39075: the Avro reader has no demotion path.
            raise IncompatibleSchemaException(
                f"cannot convert Avro type {physical.simple_string()} "
                f"to SQL type {expected.simple_string()}"
            )
        return _demote_integral(expected)

    # fractional
    if is_integral(physical) and isinstance(expected, (FloatType, DoubleType)):
        return _widen_to_float
    if isinstance(physical, FloatType) and isinstance(expected, DoubleType):
        return _identity
    if isinstance(physical, DoubleType) and isinstance(expected, FloatType):
        return _identity
    if isinstance(physical, DecimalType) and isinstance(expected, DecimalType):
        # Spark re-quantizes to the declared scale — lenient where Hive's
        # reader is strict (SPARK-39158 asymmetry).
        return _requantize(expected)
    if is_integral(physical) and isinstance(expected, DecimalType):
        requantize = _requantize(expected)
        return lambda value: requantize(decimal.Decimal(value))

    # character family
    string_like = (StringType, CharType, VarcharType)
    if isinstance(physical, string_like) and isinstance(expected, string_like):
        return _identity

    # timestamps: logical-type conversion is supported in every reader
    timestampish = (TimestampType, TimestampNTZType)
    if isinstance(physical, timestampish) and isinstance(expected, timestampish):
        return _strip_tz
    if isinstance(physical, DateType) and isinstance(expected, timestampish):
        return lambda v: datetime.datetime(v.year, v.month, v.day)

    if isinstance(physical, (BooleanType, BinaryType)) and type(
        physical
    ) is type(expected):
        return _identity

    # nested with differing element types
    if isinstance(physical, ArrayType) and isinstance(expected, ArrayType):
        return _nested(physical, expected, format_name)
    if isinstance(physical, MapType) and isinstance(expected, MapType):
        return _nested(physical, expected, format_name)
    if isinstance(physical, StructType) and isinstance(expected, StructType):
        return _nested(physical, expected, format_name)

    raise IncompatibleSchemaException(
        f"no transformer from physical {physical.simple_string()} to "
        f"expected {expected.simple_string()} ({format_name})"
    )


def _nested(
    physical: DataType, expected: DataType, format_name: str
) -> Transform:
    if isinstance(expected, ArrayType):
        element = transformer_for(
            physical.element_type, expected.element_type, format_name
        )
        return lambda value: None if value is None else [
            None if v is None else element(v) for v in value
        ]
    if isinstance(expected, MapType):
        key = transformer_for(physical.key_type, expected.key_type, format_name)
        val = transformer_for(
            physical.value_type, expected.value_type, format_name
        )
        return lambda value: None if value is None else {
            key(k): (None if v is None else val(v)) for k, v in value.items()
        }
    if isinstance(expected, StructType):
        if len(physical.fields) != len(expected.fields):
            raise IncompatibleSchemaException(
                f"struct arity mismatch: {physical.simple_string()} vs "
                f"{expected.simple_string()}"
            )
        transforms = [
            transformer_for(p.data_type, e.data_type, format_name)
            for p, e in zip(physical.fields, expected.fields)
        ]
        return lambda value: None if value is None else [
            None if v is None else t(v) for v, t in zip(value, transforms)
        ]
    raise IncompatibleSchemaException("not a nested type")


def transform_value(
    value: object,
    physical: DataType,
    expected: DataType,
    format_name: str,
) -> object:
    """One-shot convenience around :func:`transformer_for`."""
    if value is None:
        return None
    return transformer_for(physical, expected, format_name)(value)


#: Number of distinct (physical, expected) transformer families above;
#: kept as a named constant so tests can assert the layer exists and has
#: the breadth §6.1 describes.
TRANSFORMER_COUNT = 18
