"""Cross-system connector modules (the layer Finding 13 points at)."""

from repro.connectors.retry import RetryPolicy, RetryStats
from repro.connectors.spark_hive import (
    NATIVE_SCHEMA_PROPERTY,
    NOT_CASE_PRESERVING_WARNING,
    ResolvedTable,
    SparkHiveConnector,
    schema_from_property,
    schema_to_property,
)
from repro.connectors.transformers import (
    TRANSFORMER_COUNT,
    transform_value,
    transformer_for,
)

__all__ = [
    "RetryPolicy",
    "RetryStats",
    "NATIVE_SCHEMA_PROPERTY",
    "NOT_CASE_PRESERVING_WARNING",
    "ResolvedTable",
    "SparkHiveConnector",
    "schema_from_property",
    "schema_to_property",
    "TRANSFORMER_COUNT",
    "transform_value",
    "transformer_for",
]
