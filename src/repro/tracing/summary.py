"""Per-boundary scrape of exported traces: counts and latency quantiles.

``python -m repro trace summarize OUT`` feeds every exported span into
the standard :mod:`repro.metrics` substrate — one counter and one
:class:`~repro.metrics.Histogram` per boundary — and renders
per-boundary span counts with p50/p99 latencies.

The §1 lesson is wired in deliberately: a *known* boundary with zero
spans is read back through :class:`~repro.metrics.AbsentPolicy`, so
under the default ``ABSENT`` policy it renders as ``ABSENT`` — never as
a silent 0 a consumer could mistake for "this boundary was watched and
quiet" (the exact misread behind the GCP quota outage).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics import (
    AbsentPolicy,
    MetricsRegistry,
    quantile_from_snapshot,
)
from repro.tracing.core import Span

__all__ = [
    "KNOWN_BOUNDARIES",
    "KNOWN_STAGES",
    "BoundarySummary",
    "StageSummary",
    "scrape_spans",
    "split_by_source",
    "summarize_spans",
    "summarize_stages",
    "summary_lines",
]

#: the implicit source of untagged spans — the §8 cross-test matrix
DEFAULT_SOURCE = "matrix"

#: every harness stage a traced trial can spend time in. ``reset`` is
#: deliberately untraced — it runs outside the tracer and injector
#: contexts so deployment recycling can never perturb span trees or
#: fault visit counters — and therefore always reads ABSENT here under
#: the default policy; its wall clock is covered by the executor's
#: ``latency_stage_reset`` histogram instead.
KNOWN_STAGES = ("create", "write", "read", "reset")

#: every boundary the instrumented seams can emit. ``summarize`` reports
#: each of these even when no span crossed it — absence is information.
KNOWN_BOUNDARIES = (
    "spark->metastore",
    "hive->metastore",
    "spark->hdfs",
    "hive->hdfs",
    "spark->serde",
    "hive->serde",
    "hive->hbase",
    "am->rm",
    "crosstest->oracle",
)


@dataclass(frozen=True)
class BoundarySummary:
    """What the scrape saw for one boundary."""

    boundary: str
    count: int | None  # None == ABSENT under the scrape's absent policy
    errors: int = 0
    p50_s: float = 0.0
    p99_s: float = 0.0

    @property
    def absent(self) -> bool:
        return self.count is None


def _counter_name(boundary: str) -> str:
    return f"boundary_spans:{boundary}"


def _error_name(boundary: str) -> str:
    return f"boundary_errors:{boundary}"


def _histogram_name(boundary: str) -> str:
    return f"boundary_latency:{boundary}"


def scrape_spans(spans: list[Span]) -> MetricsRegistry:
    """Aggregate boundary spans into a metrics registry.

    Only boundaries that actually appear get registered — the registry
    models what a scrape of the trace data *observes*, and the absent
    policy decides how an unobserved boundary reads.
    """
    registry = MetricsRegistry("tracing")
    for item in spans:
        if not item.boundary:
            continue
        registry.counter(
            _counter_name(item.boundary),
            description=f"spans crossing {item.boundary}",
        ).increment()
        if item.status == "error":
            registry.counter(
                _error_name(item.boundary),
                description=f"errored spans crossing {item.boundary}",
            ).increment()
        registry.histogram(
            _histogram_name(item.boundary),
            description=f"span latency across {item.boundary} (seconds)",
        ).observe(item.duration_s)
    return registry


def summarize_spans(
    spans: list[Span],
    absent_policy: AbsentPolicy = AbsentPolicy.ABSENT,
    boundaries: tuple[str, ...] = KNOWN_BOUNDARIES,
) -> list[BoundarySummary]:
    """One :class:`BoundarySummary` per boundary, known ones first.

    Known boundaries are *read through the registry's absent policy*:
    ``ABSENT`` yields ``count=None``, ``ZERO`` yields the historical
    silent 0, and ``ERROR`` refuses the scrape with
    :class:`~repro.metrics.MetricError`.
    """
    registry = scrape_spans(spans)
    snapshot = registry.snapshot()
    seen = sorted(
        {item.boundary for item in spans if item.boundary} - set(boundaries)
    )
    summaries: list[BoundarySummary] = []
    for boundary in tuple(boundaries) + tuple(seen):
        count = registry.read(_counter_name(boundary), absent_policy)
        if count is None:
            summaries.append(BoundarySummary(boundary, None))
            continue
        histogram = snapshot.get(_histogram_name(boundary))
        if histogram is not None and histogram.get("count"):
            p50 = quantile_from_snapshot(histogram, 0.5)
            p99 = quantile_from_snapshot(histogram, 0.99)
        else:
            p50 = p99 = 0.0
        errors = snapshot.get(_error_name(boundary), {}).get("value", 0)
        summaries.append(
            BoundarySummary(
                boundary,
                count=int(count),
                errors=int(errors),
                p50_s=p50,
                p99_s=p99,
            )
        )
    return summaries


@dataclass(frozen=True)
class StageSummary:
    """What the scrape saw for one harness stage."""

    stage: str
    count: int | None  # None == ABSENT under the scrape's absent policy
    errors: int = 0
    p50_s: float = 0.0
    p99_s: float = 0.0

    @property
    def absent(self) -> bool:
        return self.count is None


def _is_stage_span(item: Span) -> bool:
    return (
        item.system == "crosstest"
        and item.operation in KNOWN_STAGES
        and item.name == f"crosstest.{item.operation}"
    )


def summarize_stages(
    spans: list[Span],
    absent_policy: AbsentPolicy = AbsentPolicy.ABSENT,
) -> list[StageSummary]:
    """One :class:`StageSummary` per harness stage, in stage order.

    The per-stage complement of :func:`summarize_spans`: the harness
    emits one ``crosstest.<stage>`` span per trial stage, and this
    scrape turns them into per-stage counts and latency quantiles so a
    slow matrix is attributable to a stage, not just a boundary. Known
    stages read through the absent policy exactly like known
    boundaries — ``reset`` in particular is *expected* to read ABSENT
    (it is deliberately untraced; see :data:`KNOWN_STAGES`).

    Note ``absent_policy=ERROR`` therefore refuses any real harness
    trace: pass an explicit non-default policy only when scraping spans
    that genuinely cover all four stages.
    """
    registry = MetricsRegistry("tracing")
    for item in spans:
        if not _is_stage_span(item):
            continue
        registry.counter(
            f"stage_spans:{item.operation}",
            description=f"{item.operation}-stage spans",
        ).increment()
        if item.status == "error":
            registry.counter(
                f"stage_errors:{item.operation}",
                description=f"errored {item.operation}-stage spans",
            ).increment()
        registry.histogram(
            f"stage_latency:{item.operation}",
            description=f"{item.operation}-stage latency (seconds)",
        ).observe(item.duration_s)
    snapshot = registry.snapshot()
    summaries: list[StageSummary] = []
    for stage in KNOWN_STAGES:
        count = registry.read(f"stage_spans:{stage}", absent_policy)
        if count is None:
            summaries.append(StageSummary(stage, None))
            continue
        histogram = snapshot.get(f"stage_latency:{stage}")
        if histogram is not None and histogram.get("count"):
            p50 = quantile_from_snapshot(histogram, 0.5)
            p99 = quantile_from_snapshot(histogram, 0.99)
        else:
            p50 = p99 = 0.0
        errors = snapshot.get(f"stage_errors:{stage}", {}).get("value", 0)
        summaries.append(
            StageSummary(
                stage,
                count=int(count),
                errors=int(errors),
                p50_s=p50,
                p99_s=p99,
            )
        )
    return summaries


def split_by_source(spans: list[Span]) -> dict[str, list[Span]]:
    """Group spans by their ``source`` attribute.

    Fuzz campaigns tag every span they emit with
    ``attributes["source"] = "fuzz"``; spans with no tag are the §8
    matrix and land under :data:`DEFAULT_SOURCE`. Span order within
    each group is preserved.
    """
    by_source: dict[str, list[Span]] = {}
    for span in spans:
        source = str(span.attributes.get("source", DEFAULT_SOURCE))
        by_source.setdefault(source, []).append(span)
    return by_source


def summary_lines(
    spans: list[Span],
    absent_policy: AbsentPolicy = AbsentPolicy.ABSENT,
) -> list[str]:
    """The rendered per-boundary table(s) for the CLI.

    When every span is untagged (no fuzzing ran), the output is the
    single historical table, byte-identical to what it was before
    sources existed. When tagged spans are present, each source gets
    its own ``[source=...]`` table so fuzz traffic never inflates the
    §8 matrix counts.
    """
    by_source = split_by_source(spans)
    extra = sorted(source for source in by_source if source != DEFAULT_SOURCE)
    if not extra:
        lines = _table_lines(spans, absent_policy)
    else:
        lines = []
        for source in (DEFAULT_SOURCE, *extra):
            lines.append(f"[source={source}]")
            lines.extend(
                _table_lines(by_source.get(source, []), absent_policy)
            )
    if any(_is_stage_span(item) for item in spans):
        lines.extend(_stage_table_lines(spans, absent_policy))
    return lines


def _table_lines(
    spans: list[Span],
    absent_policy: AbsentPolicy = AbsentPolicy.ABSENT,
) -> list[str]:
    """One rendered per-boundary table."""
    width = max(len(b) for b in KNOWN_BOUNDARIES) + 2
    lines = [
        f"{'boundary':<{width}} {'spans':>8} {'errors':>7} "
        f"{'p50':>9} {'p99':>9}"
    ]
    for row in summarize_spans(spans, absent_policy):
        if row.absent:
            lines.append(f"{row.boundary:<{width}} {'ABSENT':>8}")
            continue
        lines.append(
            f"{row.boundary:<{width}} {row.count:>8} {row.errors:>7} "
            f"{row.p50_s * 1e6:>7.0f}us {row.p99_s * 1e6:>7.0f}us"
        )
    total = sum(1 for item in spans if item.boundary)
    lines.append(
        f"{len(spans)} spans total, {total} boundary crossings, "
        f"absent_policy={absent_policy.value}"
    )
    return lines


def _stage_table_lines(
    spans: list[Span],
    absent_policy: AbsentPolicy = AbsentPolicy.ABSENT,
) -> list[str]:
    """The rendered per-stage table (only when stage spans exist)."""
    width = max(len(stage) for stage in KNOWN_STAGES) + 2
    lines = [
        "[trial stages]",
        f"{'stage':<{width}} {'spans':>8} {'errors':>7} "
        f"{'p50':>9} {'p99':>9}",
    ]
    for row in summarize_stages(spans, absent_policy):
        if row.absent:
            lines.append(f"{row.stage:<{width}} {'ABSENT':>8}")
            continue
        lines.append(
            f"{row.stage:<{width}} {row.count:>8} {row.errors:>7} "
            f"{row.p50_s * 1e6:>7.0f}us {row.p99_s * 1e6:>7.0f}us"
        )
    return lines
