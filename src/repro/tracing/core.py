"""Boundary tracing: context-propagating spans over cross-system calls.

The paper's §6.2.2 finding — CSI failures impair observability because
the signal crossing a boundary is wrong or missing — is a tracing
problem: to debug a cross-system trial you need to know *which*
boundaries it crossed, in what order, and where it diverged. This
module is the substrate: Dapper/Canopy-style spans with explicit
``(system, peer_system, operation, boundary)`` attributes and
structured events, nested through a :mod:`contextvars` active-span
stack so spans parent correctly across sync call chains and survive
the cross-test process pool (workers ship finished spans back with
their trial results).

Tracing defaults **off** and the disabled path is a single module-level
counter check plus a shared no-op context manager — cheap enough to
leave the instrumentation inline on the 10k-trial hot path (guarded by
``benchmarks/test_bench_tracing_overhead.py``).
"""

from __future__ import annotations

import itertools
import threading
import time
from contextvars import ContextVar, Token
from dataclasses import dataclass, field

__all__ = [
    "SpanEvent",
    "Span",
    "Tracer",
    "span",
    "event",
    "current_tracer",
    "current_span",
    "tracing_enabled",
]


@dataclass
class SpanEvent:
    """A structured, timestamped annotation inside a span."""

    name: str
    offset_s: float
    attributes: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        payload = {"name": self.name, "offset_s": round(self.offset_s, 9)}
        if self.attributes:
            payload["attributes"] = self.attributes
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "SpanEvent":
        return cls(
            name=payload["name"],
            offset_s=payload.get("offset_s", 0.0),
            attributes=dict(payload.get("attributes", {})),
        )


@dataclass
class Span:
    """One timed operation, optionally crossing a system boundary.

    ``boundary`` is non-empty exactly when the operation leaves the
    calling system (``"spark->metastore"``, ``"am->rm"``, ...); spans
    with an empty boundary are intra-system structure (a trial stage, a
    SQL statement). Only plain picklable fields — spans cross process
    boundaries inside ``ShardResult``.
    """

    name: str
    trace_id: str
    span_id: int
    parent_id: int | None = None
    system: str = ""
    peer_system: str = ""
    operation: str = ""
    boundary: str = ""
    start_s: float = 0.0
    duration_s: float = 0.0
    status: str = "ok"  # "ok" | "error"
    error: str = ""
    attributes: dict = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)

    def add_event(self, name: str, **attributes: object) -> SpanEvent:
        evt = SpanEvent(
            name, time.perf_counter() - self.start_s, dict(attributes)
        )
        self.events.append(evt)
        return evt

    def to_json(self) -> dict:
        payload = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "system": self.system,
            "peer_system": self.peer_system,
            "operation": self.operation,
            "boundary": self.boundary,
            "start_s": round(self.start_s, 9),
            "duration_s": round(self.duration_s, 9),
            "status": self.status,
        }
        if self.error:
            payload["error"] = self.error
        if self.attributes:
            payload["attributes"] = self.attributes
        if self.events:
            payload["events"] = [evt.to_json() for evt in self.events]
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "Span":
        return cls(
            name=payload["name"],
            trace_id=payload.get("trace_id", ""),
            span_id=payload.get("span_id", 0),
            parent_id=payload.get("parent_id"),
            system=payload.get("system", ""),
            peer_system=payload.get("peer_system", ""),
            operation=payload.get("operation", ""),
            boundary=payload.get("boundary", ""),
            start_s=payload.get("start_s", 0.0),
            duration_s=payload.get("duration_s", 0.0),
            status=payload.get("status", "ok"),
            error=payload.get("error", ""),
            attributes=dict(payload.get("attributes", {})),
            events=[
                SpanEvent.from_json(evt) for evt in payload.get("events", [])
            ],
        )


# -- the active tracer/span stack -------------------------------------------

#: how many tracers are currently activated, process-wide. The disabled
#: fast path reads this plain int — no ContextVar lookup, no lock — so a
#: tracing-off run pays one global load per instrumented call site.
_ACTIVE_TRACERS = 0
_ACTIVE_LOCK = threading.Lock()

_CURRENT_TRACER: ContextVar["Tracer | None"] = ContextVar(
    "repro_tracer", default=None
)
_CURRENT_SPAN: ContextVar[Span | None] = ContextVar(
    "repro_span", default=None
)

_TRACE_IDS = itertools.count(1)


class _NoopSpanContext:
    """Shared do-nothing context manager for the tracing-off path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP = _NoopSpanContext()


class _SpanContext:
    """Context manager that opens a span on the contextvars stack."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._token: Token[Span | None] | None = None

    def __enter__(self) -> Span:
        parent = _CURRENT_SPAN.get()
        if parent is not None:
            self._span.parent_id = parent.span_id
        self._span.start_s = time.perf_counter()
        self._token = _CURRENT_SPAN.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.duration_s = time.perf_counter() - span.start_s
        if exc is not None:
            span.status = "error"
            span.error = f"{exc_type.__name__}: {exc}"
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
        self._tracer.finished.append(span)
        return False


class Tracer:
    """Collects the spans of one trace (one trial, one scenario run).

    Used as a context manager: ``with Tracer() as tracer: ...`` makes it
    the current tracer for the enclosing context (thread/task), so the
    module-level :func:`span` helper — the only thing instrumentation
    sites call — records into it. Finished spans accumulate in
    ``tracer.finished`` in completion order (children before parents).
    """

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = (
            trace_id if trace_id is not None else f"trace-{next(_TRACE_IDS)}"
        )
        self.finished: list[Span] = []
        self._span_ids = itertools.count(1)
        self._tracer_token: Token[Tracer | None] | None = None
        self._span_token: Token[Span | None] | None = None

    def span(
        self,
        name: str,
        *,
        system: str = "",
        peer_system: str = "",
        operation: str = "",
        boundary: str = "",
        attributes: dict | None = None,
    ) -> _SpanContext:
        return _SpanContext(
            self,
            Span(
                name=name,
                trace_id=self.trace_id,
                span_id=next(self._span_ids),
                system=system,
                peer_system=peer_system,
                operation=operation,
                boundary=boundary,
                attributes=dict(attributes) if attributes else {},
            ),
        )

    # -- activation -----------------------------------------------------

    def __enter__(self) -> "Tracer":
        global _ACTIVE_TRACERS
        self._tracer_token = _CURRENT_TRACER.set(self)
        # a fresh tracer must not adopt spans from an outer tracer as
        # parents — traces are independent
        self._span_token = _CURRENT_SPAN.set(None)
        with _ACTIVE_LOCK:
            _ACTIVE_TRACERS += 1
        return self

    def __exit__(self, *exc_info: object) -> bool:
        global _ACTIVE_TRACERS
        with _ACTIVE_LOCK:
            _ACTIVE_TRACERS -= 1
        if self._span_token is not None:
            _CURRENT_SPAN.reset(self._span_token)
        if self._tracer_token is not None:
            _CURRENT_TRACER.reset(self._tracer_token)
        return False


# -- module-level instrumentation API ---------------------------------------


def span(
    name: str,
    *,
    system: str = "",
    peer_system: str = "",
    operation: str = "",
    boundary: str = "",
    attributes: dict | None = None,
):
    """Open a span on the current tracer, or do nothing if tracing is off.

    The instrumentation sites call this unconditionally; when no tracer
    is active (the default) it returns a shared no-op context manager
    after a single global check.
    """
    if not _ACTIVE_TRACERS:
        return _NOOP
    tracer = _CURRENT_TRACER.get()
    if tracer is None:
        return _NOOP
    return tracer.span(
        name,
        system=system,
        peer_system=peer_system,
        operation=operation,
        boundary=boundary,
        attributes=attributes,
    )


def event(name: str, **attributes: object) -> None:
    """Attach a structured event to the innermost active span, if any."""
    if not _ACTIVE_TRACERS:
        return
    active = _CURRENT_SPAN.get()
    if active is None:
        return
    active.add_event(name, **attributes)


def current_tracer() -> Tracer | None:
    return _CURRENT_TRACER.get() if _ACTIVE_TRACERS else None


def current_span() -> Span | None:
    return _CURRENT_SPAN.get() if _ACTIVE_TRACERS else None


def tracing_enabled() -> bool:
    """Whether *this context* records spans (a tracer is current here)."""
    return bool(_ACTIVE_TRACERS) and _CURRENT_TRACER.get() is not None
