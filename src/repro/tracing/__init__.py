"""Boundary tracing for every cross-system call in the simulation.

Usage, end to end::

    from repro import tracing

    with tracing.Tracer() as tracer:
        ...  # anything that crosses an instrumented seam
    tracing.write_jsonl(tracer.finished, "trace.jsonl")
    tracing.write_chrome_trace(tracer.finished, "trace.chrome.json")
    print("\\n".join(tracing.summary_lines(tracer.finished)))

Instrumentation sites call :func:`tracing.span` / :func:`tracing.event`
unconditionally; with no tracer active (the default) both are no-ops
behind a single global check.
"""

from repro.tracing.core import (
    Span,
    SpanEvent,
    Tracer,
    current_span,
    current_tracer,
    event,
    span,
    tracing_enabled,
)
from repro.tracing.export import (
    decode_span_batches,
    encode_span_batches,
    read_jsonl,
    read_jsonl_dir,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.tracing.summary import (
    KNOWN_BOUNDARIES,
    BoundarySummary,
    scrape_spans,
    split_by_source,
    summarize_spans,
    summary_lines,
)

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "current_span",
    "current_tracer",
    "event",
    "span",
    "tracing_enabled",
    "decode_span_batches",
    "encode_span_batches",
    "read_jsonl",
    "read_jsonl_dir",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "KNOWN_BOUNDARIES",
    "BoundarySummary",
    "scrape_spans",
    "split_by_source",
    "summarize_spans",
    "summary_lines",
]
