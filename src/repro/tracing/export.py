"""Trace exporters: JSONL span records and Chrome ``chrome://tracing``.

JSONL is the machine-readable interchange format (one span per line,
``Span.to_json`` payloads) that ``repro trace summarize`` scrapes; the
Chrome trace format opens directly in ``chrome://tracing`` / Perfetto
for visual inspection of a discrepancy's span tree.
"""

from __future__ import annotations

import json
import os

from repro.tracing.core import Span

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "encode_span_batches",
    "decode_span_batches",
]


def write_jsonl(spans: list[Span], path: str) -> str:
    """Write spans as JSON Lines; returns the path written."""
    with open(path, "w", encoding="utf-8") as handle:
        for item in spans:
            handle.write(json.dumps(item.to_json(), sort_keys=True) + "\n")
    return path


def read_jsonl(path: str) -> list[Span]:
    spans: list[Span] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_json(json.loads(line)))
    return spans


def read_jsonl_dir(directory: str) -> list[Span]:
    """Every span from every ``*.jsonl`` file under ``directory``."""
    spans: list[Span] = []
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".jsonl"):
            spans.extend(read_jsonl(os.path.join(directory, entry)))
    return spans


def encode_span_batches(batches: list[tuple[Span, ...]]) -> bytes:
    """Serialize per-trial span tuples into one compact JSON blob.

    This is the shard-result wire format: a worker encodes every span
    its shard produced *once*, ships a single ``bytes`` object back, and
    the parent decodes it with one :func:`json.loads` — instead of
    pickling thousands of ``Span``/``SpanEvent`` dataclass instances
    per shard. The payload is the same ``Span.to_json`` schema the JSONL
    exporter writes, so anything a trace file can hold round-trips here.
    """
    return json.dumps(
        [[span.to_json() for span in batch] for batch in batches],
        separators=(",", ":"),
    ).encode("utf-8")


def decode_span_batches(blob: bytes) -> list[tuple[Span, ...]]:
    """Inverse of :func:`encode_span_batches`, in the same batch order."""
    return [
        tuple(Span.from_json(payload) for payload in batch)
        for batch in json.loads(blob.decode("utf-8"))
    ]


def to_chrome_trace(spans: list[Span]) -> dict:
    """Spans as a Chrome Trace Event document (``traceEvents``).

    Complete events (``ph: "X"``) with microsecond timestamps relative
    to the earliest span; one ``pid`` per trace id, one ``tid`` per
    system, so a multi-trial export renders as parallel tracks.
    """
    if spans:
        epoch = min(item.start_s for item in spans)
    else:
        epoch = 0.0
    pids: dict[str, int] = {}
    tids: dict[str, int] = {}
    events: list[dict] = []
    metadata: list[dict] = []
    for item in spans:
        pid = pids.get(item.trace_id)
        if pid is None:
            pid = pids[item.trace_id] = len(pids) + 1
            metadata.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "name": "process_name",
                    "args": {"name": item.trace_id},
                }
            )
        tid_key = item.system or "untracked"
        tid = tids.get(tid_key)
        if tid is None:
            tid = tids[tid_key] = len(tids) + 1
            metadata.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": tid_key},
                }
            )
        args = {
            "operation": item.operation,
            "boundary": item.boundary,
            "peer_system": item.peer_system,
            "status": item.status,
        }
        if item.error:
            args["error"] = item.error
        args.update(item.attributes)
        for evt in item.events:
            args[f"event:{evt.name}"] = evt.attributes or True
        events.append(
            {
                "ph": "X",
                "name": item.name,
                "cat": item.boundary or "internal",
                "pid": pid,
                "tid": tid,
                "ts": round((item.start_s - epoch) * 1e6, 3),
                "dur": round(item.duration_s * 1e6, 3),
                "args": args,
            }
        )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: list[Span], path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(spans), handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path
