"""Built-in cross-system rules, one per studied configuration failure.

Each rule encodes the coherence property whose violation caused a real
CSI failure from the dataset (Table 7's examples), so running the
checker against a to-be-deployed configuration set catches the failure
*before* deployment — the paper's proposed practice.
"""

from __future__ import annotations

from repro.confcheck.rules import Deployment, Rule, Severity, Violation
from repro.core.taxonomy import ConfigPattern
from repro.flinklite.configs import HEAP_CUTOFF_RATIO, JM_PROCESS_SIZE_MB
from repro.yarnlite.configs import (
    INCREMENT_MB,
    MAX_ALLOC_MB,
    MIN_ALLOC_MB,
    NM_MEMORY_MB,
    PMEM_CHECK_ENABLED,
    SCHEDULER_CLASS,
)

__all__ = ["BUILTIN_RULES", "default_rules"]


def _flink_19141(deployment: Deployment) -> list[Violation]:
    """FLINK-19141: Flink sizes containers with the min-allocation keys,
    which only the capacity scheduler honours."""
    yarn = deployment.require("yarn")
    if yarn.get(SCHEDULER_CLASS) != "fair":
        return []
    minimum = int(yarn.get(MIN_ALLOC_MB))
    increment = int(yarn.get(INCREMENT_MB))
    if minimum == increment:
        return []
    return [
        Violation(
            rule_id="flink-yarn-allocation-keys",
            pattern=ConfigPattern.INCONSISTENT_CONTEXT,
            severity=Severity.ERROR,
            message=(
                "the fair scheduler normalizes with "
                f"{INCREMENT_MB}={increment} but Flink's container "
                f"arithmetic reads {MIN_ALLOC_MB}={minimum}; container "
                "sizes will disagree (FLINK-19141)"
            ),
            systems=("flink", "yarn"),
            keys=(MIN_ALLOC_MB, INCREMENT_MB, SCHEDULER_CLASS),
        )
    ]


def _flink_887(deployment: Deployment) -> list[Violation]:
    """FLINK-887: a zero heap cutoff under an enabled pmem monitor."""
    flink = deployment.require("flink")
    yarn = deployment.require("yarn")
    if not bool(yarn.get(PMEM_CHECK_ENABLED)):
        return []
    ratio = float(flink.get(HEAP_CUTOFF_RATIO))
    if ratio > 0.1:
        return []
    return [
        Violation(
            rule_id="flink-yarn-pmem-headroom",
            pattern=ConfigPattern.INCONSISTENT_CONTEXT,
            severity=Severity.ERROR,
            message=(
                f"{HEAP_CUTOFF_RATIO}={ratio} leaves no headroom below "
                "the container allocation while YARN's pmem monitor is "
                "enabled; the JobManager will be killed (FLINK-887)"
            ),
            systems=("flink", "yarn"),
            keys=(HEAP_CUTOFF_RATIO, PMEM_CHECK_ENABLED),
        )
    ]


def _flink_container_fits(deployment: Deployment) -> list[Violation]:
    """A JobManager container larger than the NM or the scheduler max
    can never be allocated."""
    flink = deployment.require("flink")
    yarn = deployment.require("yarn")
    requested = int(flink.get(JM_PROCESS_SIZE_MB))
    violations = []
    for key in (MAX_ALLOC_MB, NM_MEMORY_MB):
        limit = int(yarn.get(key))
        if requested > limit:
            violations.append(
                Violation(
                    rule_id="flink-yarn-container-size",
                    pattern=ConfigPattern.INCONSISTENT_CONTEXT,
                    severity=Severity.ERROR,
                    message=(
                        f"{JM_PROCESS_SIZE_MB}={requested} exceeds "
                        f"{key}={limit}"
                    ),
                    systems=("flink", "yarn"),
                    keys=(JM_PROCESS_SIZE_MB, key),
                )
            )
    return violations


def _spark_10181(deployment: Deployment) -> list[Violation]:
    """SPARK-10181: Kerberos principal/keytab must propagate to the
    Hive client; setting one without the other is silently ignored."""
    spark = deployment.require("spark")
    keytab = spark.get("spark.yarn.keytab")
    principal = spark.get("spark.yarn.principal")
    if (keytab is None) == (principal is None):
        return []
    present, missing = (
        ("spark.yarn.keytab", "spark.yarn.principal")
        if keytab is not None
        else ("spark.yarn.principal", "spark.yarn.keytab")
    )
    return [
        Violation(
            rule_id="spark-hive-kerberos-pair",
            pattern=ConfigPattern.IGNORANCE,
            severity=Severity.ERROR,
            message=(
                f"{present} is set without {missing}; Spark's Hive client "
                "ignores the half-configured credentials (SPARK-10181)"
            ),
            systems=("spark", "hive"),
            keys=(present, missing),
        )
    ]


def _spark_16901(deployment: Deployment) -> list[Violation]:
    """SPARK-16901: a value Spark's merge silently overwrote.

    Detectable through provenance: an audit entry whose chain was
    scrubbed while a differently-sourced explicit value existed for the
    same key in another system's configuration.
    """
    spark = deployment.require("spark")
    hive = deployment.get("hive-site") or deployment.get("hive")
    if hive is None:
        return []
    violations = []
    for key, value in hive.explicit_items():
        entry = spark.entry(key)
        if entry is not None and entry.value != value:
            violations.append(
                Violation(
                    rule_id="spark-hive-config-overwrite",
                    pattern=ConfigPattern.UNEXPECTED_OVERRIDE,
                    severity=Severity.WARNING,
                    message=(
                        f"{key} is {value!r} in hive-site but "
                        f"{entry.value!r} (from {entry.source}) in Spark's "
                        "effective configuration; the operator value was "
                        "overruled (SPARK-16901)"
                    ),
                    systems=("spark", "hive"),
                    keys=(key,),
                )
            )
    return violations


def _spark_15046(deployment: Deployment) -> list[Violation]:
    """SPARK-15046: interval-typed parameters handled as raw numerics.

    Flags suspicious magnitudes: a duration over 24h usually means a
    unit was dropped somewhere between the systems.
    """
    spark = deployment.require("spark")
    violations = []
    for key in ("spark.network.timeout", "spark.yarn.am.waitTime"):
        value = spark.get(key)
        if isinstance(value, int) and value > 86_400_000:
            violations.append(
                Violation(
                    rule_id="spark-yarn-interval-magnitude",
                    pattern=ConfigPattern.MISHANDLING_VALUES,
                    severity=Severity.WARNING,
                    message=(
                        f"{key}={value}ms exceeds 24h; interval values of "
                        "this magnitude are usually unit mistakes "
                        "(SPARK-15046 allowed 86400079ms)"
                    ),
                    systems=("spark", "yarn"),
                    keys=(key,),
                )
            )
    return violations


BUILTIN_RULES: tuple[Rule, ...] = (
    Rule(
        rule_id="flink-yarn-allocation-keys",
        pattern=ConfigPattern.INCONSISTENT_CONTEXT,
        description="Flink container sizing vs the active YARN scheduler",
        applies_to=("flink", "yarn"),
        check=_flink_19141,
    ),
    Rule(
        rule_id="flink-yarn-pmem-headroom",
        pattern=ConfigPattern.INCONSISTENT_CONTEXT,
        description="JVM headroom vs the NodeManager pmem monitor",
        applies_to=("flink", "yarn"),
        check=_flink_887,
    ),
    Rule(
        rule_id="flink-yarn-container-size",
        pattern=ConfigPattern.INCONSISTENT_CONTEXT,
        description="Requested container fits scheduler and NM limits",
        applies_to=("flink", "yarn"),
        check=_flink_container_fits,
    ),
    Rule(
        rule_id="spark-hive-kerberos-pair",
        pattern=ConfigPattern.IGNORANCE,
        description="Kerberos keytab/principal must be set together",
        applies_to=("spark",),
        check=_spark_10181,
    ),
    Rule(
        rule_id="spark-hive-config-overwrite",
        pattern=ConfigPattern.UNEXPECTED_OVERRIDE,
        description="Operator hive-site values survive Spark's merge",
        applies_to=("spark",),
        check=_spark_16901,
    ),
    Rule(
        rule_id="spark-yarn-interval-magnitude",
        pattern=ConfigPattern.MISHANDLING_VALUES,
        description="Interval parameters with unit-mistake magnitudes",
        applies_to=("spark",),
        check=_spark_15046,
    ),
)


def default_rules() -> list[Rule]:
    return list(BUILTIN_RULES)
