"""Cross-system configuration checking (the §6.2.1 implication)."""

from repro.confcheck.builtin import BUILTIN_RULES, default_rules
from repro.confcheck.rules import (
    Deployment,
    Rule,
    Severity,
    Violation,
    check_deployment,
)

__all__ = [
    "BUILTIN_RULES",
    "default_rules",
    "Deployment",
    "Rule",
    "Severity",
    "Violation",
    "check_deployment",
]
