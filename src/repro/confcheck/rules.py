"""Cross-system configuration checking (§6.2.1's implication).

Finding 7: CSI-inducing configuration issues are about *coherently
configuring multiple systems* — values silently ignored, unexpectedly
overridden, or correct-in-isolation but wrong in the deployed context.
The paper's implication: "cross-system configuration testing, i.e.,
cross-testing multiple systems under deployment (or to-be-deployed)
configurations, could expose configuration-related CSI failures" and
"traceability of how configuration values are applied across systems
could be useful."

This module is that checker. A :class:`Rule` relates configuration
values *across* systems; :func:`check_deployment` evaluates a rule set
against the set of per-system :class:`Configuration` objects that make
up one deployment and returns typed violations, each labeled with the
Table 7 pattern it instantiates.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.common.config import Configuration
from repro.core.taxonomy import ConfigPattern

__all__ = ["Severity", "Violation", "Rule", "Deployment", "check_deployment"]


class Severity:
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Violation:
    rule_id: str
    pattern: ConfigPattern
    severity: str
    message: str
    systems: tuple[str, ...]
    keys: tuple[str, ...] = ()

    def render(self) -> str:
        return (
            f"[{self.severity}] {self.rule_id} "
            f"({'+'.join(self.systems)}): {self.message}"
        )


@dataclass
class Deployment:
    """The configuration plane of one co-deployment: one
    :class:`Configuration` per system, keyed by system name."""

    configurations: dict[str, Configuration] = field(default_factory=dict)

    def add(self, configuration: Configuration) -> "Deployment":
        self.configurations[configuration.system] = configuration
        return self

    def get(self, system: str) -> Configuration | None:
        return self.configurations.get(system)

    def require(self, system: str) -> Configuration:
        configuration = self.configurations.get(system)
        if configuration is None:
            raise KeyError(f"deployment has no {system!r} configuration")
        return configuration


@dataclass(frozen=True)
class Rule:
    """One cross-system consistency rule.

    ``applies_to`` lists the systems the rule needs; ``check`` receives
    the deployment and returns violations (empty when coherent).
    """

    rule_id: str
    pattern: ConfigPattern
    description: str
    applies_to: tuple[str, ...]
    check: Callable[[Deployment], list[Violation]]

    def applicable(self, deployment: Deployment) -> bool:
        return all(
            system in deployment.configurations for system in self.applies_to
        )


def check_deployment(
    deployment: Deployment, rules: list[Rule]
) -> list[Violation]:
    """Run every applicable rule; violations sorted errors-first."""
    violations: list[Violation] = []
    for rule in rules:
        if rule.applicable(deployment):
            violations.extend(rule.check(deployment))
    order = {Severity.ERROR: 0, Severity.WARNING: 1}
    return sorted(
        violations, key=lambda v: (order.get(v.severity, 2), v.rule_id)
    )
