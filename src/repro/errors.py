"""Exception hierarchy shared by every subsystem in the reproduction.

Each simulated system raises its own exception family so that
cross-system tests can distinguish *which* side of an interaction
failed, exactly as the paper's oracles need to (an ``EH`` oracle failure
is "invalid data accepted", which is only observable if valid rejections
raise recognizable errors).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Type system / schema errors (shared substrate)
# ---------------------------------------------------------------------------


class TypeSystemError(ReproError):
    """Base class for logical type-system errors."""


class CastError(TypeSystemError):
    """A value could not be cast to the requested logical type."""

    def __init__(self, value: object, target: object, reason: str = "") -> None:
        self.value = value
        self.target = target
        self.reason = reason
        detail = f": {reason}" if reason else ""
        super().__init__(f"cannot cast {value!r} to {target}{detail}")


class SchemaError(TypeSystemError):
    """A schema is malformed or two schemas are irreconcilable."""


class ArithmeticOverflowError(TypeSystemError):
    """A numeric value exceeds the range of its logical type (ANSI mode)."""


# ---------------------------------------------------------------------------
# Serialization / format errors
# ---------------------------------------------------------------------------


class SerializationError(ReproError):
    """A value or schema cannot be (de)serialized by a storage format."""


class IncompatibleSchemaException(SerializationError):
    """Physical data does not match the logical schema on deserialization.

    Named after Spark's ``IncompatibleSchemaException``, which is the
    user-visible symptom of SPARK-39075 (Avro round-trip of BYTE/SHORT).
    """


class UnsupportedTypeError(SerializationError):
    """The storage format has no physical representation for the type."""


# ---------------------------------------------------------------------------
# Query / engine errors
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """A SQL statement failed to parse or execute."""


class AnalysisException(QueryError):
    """Semantic analysis of a query failed (Spark terminology)."""


class ParseError(QueryError):
    """A SQL statement could not be parsed."""


# ---------------------------------------------------------------------------
# Metastore / catalog errors
# ---------------------------------------------------------------------------


class MetastoreError(ReproError):
    """The (Hive) metastore rejected an operation."""


class TableNotFoundError(MetastoreError):
    """The referenced table does not exist."""


class TableAlreadyExistsError(MetastoreError):
    """A table with the same (case-normalized) name already exists."""


# ---------------------------------------------------------------------------
# Storage (HDFS-like) errors
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for filesystem errors."""


class FileNotFoundInStorageError(StorageError):
    """The referenced path does not exist in the namespace."""


class SafeModeException(StorageError):
    """The namenode is in safe mode and rejects mutations (HBASE-537)."""


class InvalidFileLengthError(StorageError):
    """An upstream system rejected a file status (e.g. negative length)."""


# ---------------------------------------------------------------------------
# Resource management (YARN-like) errors
# ---------------------------------------------------------------------------


class ResourceError(ReproError):
    """Base class for resource-manager errors."""


class AllocationError(ResourceError):
    """A container allocation request could not be satisfied."""


class ContainerKilledError(ResourceError):
    """A container was killed by the platform (e.g. pmem monitor)."""


class SchedulerOverloadError(ResourceError):
    """The scheduler received more requests than it can queue."""


# ---------------------------------------------------------------------------
# Configuration errors
# ---------------------------------------------------------------------------


class ConfigError(ReproError):
    """Base class for configuration-plane errors."""


class UnknownConfigKeyError(ConfigError):
    """A configuration key is not registered with the target system."""


class ConfigValueError(ConfigError):
    """A configuration value failed validation."""


# ---------------------------------------------------------------------------
# Streaming (Kafka-like) errors
# ---------------------------------------------------------------------------


class StreamError(ReproError):
    """Base class for log/streaming errors."""


class OffsetOutOfRangeError(StreamError):
    """A consumer requested an offset that does not exist in the log."""


# ---------------------------------------------------------------------------
# Dataset / analysis errors
# ---------------------------------------------------------------------------


class DatasetError(ReproError):
    """The encoded study dataset violates an internal invariant."""
