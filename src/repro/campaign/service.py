"""The asyncio campaign loop: run a batch, commit it, checkpoint, repeat.

One :class:`CampaignService` owns the whole lifecycle of a campaign
process. Each iteration runs one scheduler round
(:func:`repro.fuzz.scheduler.run_round`) on the default executor — the
round itself is synchronous, CPU-bound work fanned across the worker
pool — then *commits* it: one ``campaign`` ledger record, one
fingerprint-JSONL line per key first seen this batch, and an atomic
checkpoint carrying the new byte offsets (see
:mod:`repro.campaign.checkpoint` for why offsets make resume
crash-safe).

SIGINT/SIGTERM set a stop event rather than killing anything: the
in-flight batch drains, commits, checkpoints, and the service returns
normally — so an operator's Ctrl-C and systemd's TERM both leave a
checkpoint the next invocation resumes from. A *hard* kill (SIGKILL,
OOM) is also survivable, just via the truncate-on-resume path instead.

The worker pool (:class:`~repro.crosstest.executor.WorkerPoolHandle`)
is created once and reused across every batch: a perpetual campaign
must not pay process-pool teardown per round, and keeping workers
alive keeps their parse caches and deployment pools warm — which is
outcome-neutral by the executor's byte-identity guarantee.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.campaign.checkpoint import (
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.crosstest.executor import (
    CrossTestMetrics,
    WorkerPoolHandle,
    resolve_jobs,
)
from repro.fuzz.dedup import Baseline
from repro.fuzz.scheduler import (
    CampaignState,
    FuzzConfig,
    RoundOutcome,
    run_round,
)
from repro.obs.ledger import campaign_record, run_env

__all__ = ["CampaignService", "CampaignSummary", "fingerprint_lines"]


def fingerprint_lines(state: CampaignState, outcome: RoundOutcome) -> list[str]:
    """The fingerprint-JSONL lines one committed batch contributes: one
    record per key *first seen* this batch, key-sorted. Streaming the
    per-batch delta (rather than rewriting the full set) is what lets an
    interrupted run's file be byte-compared prefix-for-prefix against an
    uninterrupted one."""
    lines = []
    for key in outcome.new_keys:
        finding = state.findings[key]
        lines.append(
            json.dumps(
                {
                    "key": key,
                    "fingerprint": finding.fingerprint.to_json(),
                    "novel": finding.novel,
                    "failures": finding.failure_count,
                    "batch": outcome.round_index,
                },
                sort_keys=True,
            )
        )
    return lines


@dataclass
class CampaignSummary:
    """What one service invocation did, for the CLI to render."""

    batches_run: int
    batches_total: int
    candidates: int
    trials: int
    coverage_features: int
    fingerprints: int
    novel_keys: list[str] = field(default_factory=list)
    novel_seen: bool = False
    resumed: bool = False
    stop_reason: str = "max-batches"

    @property
    def exit_code(self) -> int:
        """4 when any committed batch (this invocation *or* one before
        the checkpoint) witnessed a fingerprint absent from the
        baseline — same contract as ``repro fuzz``."""
        return 4 if self.novel_seen else 0

    def to_json(self) -> dict:
        return {
            "batches_run": self.batches_run,
            "batches_total": self.batches_total,
            "candidates": self.candidates,
            "trials": self.trials,
            "coverage_features": self.coverage_features,
            "fingerprints": self.fingerprints,
            "novel": list(self.novel_keys),
            "novel_seen": self.novel_seen,
            "resumed": self.resumed,
            "stop_reason": self.stop_reason,
            "exit_code": self.exit_code,
        }


class CampaignService:
    """Run a fuzz campaign continuously, checkpointing every batch.

    ``max_batches`` counts *global* batch indices, not this
    invocation's: a campaign stopped by ``--max-batches 1`` and resumed
    with ``--max-batches 3`` runs exactly the two remaining batches —
    which is what makes the kill/resume smoke comparable to an
    uninterrupted 3-batch run. ``duration`` (seconds) stops starting
    new batches once the wall clock is spent; the in-flight batch
    always drains and commits. Both bounds absent = the perpetual case.
    """

    def __init__(
        self,
        config: FuzzConfig,
        baseline: Baseline,
        *,
        checkpoint_path: str,
        fingerprints_path: str,
        ledger_path: str | None = None,
        max_batches: int | None = None,
        duration: float | None = None,
        metrics: CrossTestMetrics | None = None,
        progress: Callable[[RoundOutcome], None] | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.config = config
        self.baseline = baseline
        self.checkpoint_path = checkpoint_path
        self.fingerprints_path = fingerprints_path
        self.ledger_path = ledger_path
        self.max_batches = max_batches
        self.duration = duration
        self.metrics = metrics or CrossTestMetrics(source="campaign")
        self.progress = progress
        self.clock = clock or time.time
        self.state: CampaignState | None = None
        self.resumed = False
        self._novel_seen = False
        self._ledger_bytes = 0
        self._fingerprints_bytes = 0
        self._stop = asyncio.Event()
        self._stop_reason = "max-batches"

    # -- resume ------------------------------------------------------------

    def request_stop(self, reason: str = "signal") -> None:
        """Drain the in-flight batch, commit it, and exit cleanly."""
        self._stop_reason = reason
        self._stop.set()

    def _align_file(self, path: str, offset: int, label: str) -> None:
        """Truncate an output file back to the checkpoint's offset —
        cutting both torn trailing lines and whole batches that
        committed after the checkpointed one (both get rewritten,
        byte-identically, by re-running)."""
        size = os.path.getsize(path) if os.path.exists(path) else 0
        if size < offset:
            raise CheckpointError(
                f"{path}: {label} is {size} bytes but the checkpoint "
                f"committed {offset} — the file was rewritten or lost "
                "since the checkpoint; refusing to resume onto it"
            )
        if size > offset:
            with open(path, "r+b") as handle:
                handle.truncate(offset)

    def _prepare(self) -> None:
        """Load or initialise state and align the output files."""
        if os.path.exists(self.checkpoint_path):
            checkpoint = load_checkpoint(self.checkpoint_path)
            expected = self.config.signature()
            found = checkpoint.state.get("config")
            if found != expected:
                raise CheckpointError(
                    f"{self.checkpoint_path}: checkpoint belongs to a "
                    f"different campaign (config {found!r}, this run is "
                    f"{expected!r}); pick a fresh --checkpoint path or "
                    "match the original seed/batch/plan settings"
                )
            self.state = CampaignState.from_json(
                checkpoint.state,
                jobs=self.config.jobs,
                pool=self.config.pool,
            )
            self._novel_seen = checkpoint.novel_seen
            self._ledger_bytes = checkpoint.ledger_bytes
            self._fingerprints_bytes = checkpoint.fingerprints_bytes
            self._align_file(
                self.fingerprints_path,
                self._fingerprints_bytes,
                "fingerprint JSONL",
            )
            if self.ledger_path is not None:
                self._align_file(
                    self.ledger_path, self._ledger_bytes, "ledger"
                )
            self.resumed = True
        else:
            self.state = CampaignState.fresh(self.config)
            # a fresh campaign owns its fingerprint file outright...
            with open(self.fingerprints_path, "wb"):
                pass
            self._fingerprints_bytes = 0
            # ...but only appends to the ledger, which may already hold
            # fuzz/crosstest records from other runs
            self._ledger_bytes = (
                os.path.getsize(self.ledger_path)
                if self.ledger_path is not None
                and os.path.exists(self.ledger_path)
                else 0
            )

    # -- commit ------------------------------------------------------------

    def _append(self, path: str, lines: list[str]) -> int:
        """Append JSONL lines and return the file's new byte size."""
        with open(path, "ab") as handle:
            for line in lines:
                handle.write(line.encode("utf-8") + b"\n")
            handle.flush()
            os.fsync(handle.fileno())
            return handle.tell()

    def _ledger_record(self, outcome: RoundOutcome) -> dict:
        config = self.config
        run = {
            "seed": config.seed,
            "batch": outcome.candidates,
            "batch_index": outcome.round_index,
            "corpus": config.corpus if config.use_corpus else None,
            "plans": sorted(plan.name for plan in config.plans),
            "formats": sorted(config.formats),
        }
        results = {
            "trials": outcome.trials,
            "candidates": outcome.candidates,
            "fingerprints": list(outcome.witnessed),
            "new_fingerprints": list(outcome.new_keys),
            "novel": list(outcome.novel_keys),
            "promoted": outcome.promoted,
            "coverage_features": outcome.coverage_features,
            "rediscovered": list(outcome.rediscovered),
        }
        env = run_env(
            jobs=resolve_jobs(config.jobs),
            pool=config.pool,
            metrics=self.metrics,
        )
        return campaign_record(run, results, clock=self.clock, env=env)

    def _commit(self, outcome: RoundOutcome) -> None:
        """Make one batch durable: ledger, fingerprints, checkpoint —
        in that order, so the checkpoint's offsets always describe
        fully-written prefixes (see the checkpoint module docstring)."""
        assert self.state is not None
        if outcome.novel_keys:
            self._novel_seen = True
        if self.ledger_path is not None:
            line = json.dumps(self._ledger_record(outcome), sort_keys=True)
            self._ledger_bytes = self._append(self.ledger_path, [line])
        self._fingerprints_bytes = self._append(
            self.fingerprints_path, fingerprint_lines(self.state, outcome)
        )
        save_checkpoint(
            self.checkpoint_path,
            Checkpoint(
                state=self.state.to_json(),
                ledger_bytes=self._ledger_bytes,
                fingerprints_bytes=self._fingerprints_bytes,
                novel_seen=self._novel_seen,
                env={
                    "ts": float(self.clock()),
                    "jobs": resolve_jobs(self.config.jobs),
                    "pool": self.config.pool,
                },
            ),
        )

    # -- the loop ----------------------------------------------------------

    def _install_signal_handlers(self, loop: asyncio.AbstractEventLoop):
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum,
                    self.request_stop,
                    signal.Signals(signum).name,
                )
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                pass  # non-unix loops: bounded modes still work
        return installed

    async def run(self) -> CampaignSummary:
        """Run until a bound or a signal stops the campaign."""
        self._prepare()
        state = self.state
        assert state is not None
        loop = asyncio.get_running_loop()
        installed = self._install_signal_handlers(loop)
        started_batches = state.round_index
        deadline = (
            time.monotonic() + self.duration
            if self.duration is not None
            else None
        )
        pool_handle = (
            WorkerPoolHandle(self.config.jobs, self.config.pool)
            if resolve_jobs(self.config.jobs) > 1
            else None
        )
        try:
            while not self._stop.is_set():
                if (
                    self.max_batches is not None
                    and state.round_index >= self.max_batches
                ):
                    self._stop_reason = "max-batches"
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    self._stop_reason = "duration"
                    break
                # the round is synchronous CPU-fanout work; running it
                # on the default executor keeps this loop responsive to
                # signals while the batch is in flight
                outcome = await loop.run_in_executor(
                    None,
                    lambda: run_round(
                        state,
                        self.baseline,
                        metrics=self.metrics,
                        pool_handle=pool_handle,
                    ),
                )
                self._commit(outcome)
                if self.progress is not None:
                    self.progress(outcome)
        finally:
            if pool_handle is not None:
                pool_handle.close()
            for signum in installed:
                loop.remove_signal_handler(signum)
        return CampaignSummary(
            batches_run=state.round_index - started_batches,
            batches_total=state.round_index,
            candidates=state.candidates,
            trials=state.trials_run,
            coverage_features=len(state.coverage),
            fingerprints=len(state.findings),
            novel_keys=state.novel_keys,
            novel_seen=self._novel_seen,
            resumed=self.resumed,
            stop_reason=self._stop_reason,
        )
