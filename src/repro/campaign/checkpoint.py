"""Campaign checkpoints: atomic JSON snapshots with a commit protocol.

A checkpoint is everything :class:`~repro.fuzz.scheduler.CampaignState`
serializes (seed cursor, batch index, coverage map, seen fingerprints —
all by provenance, so it stays a few KB of pure JSON) plus the two byte
offsets that make resume crash-safe: how far the ledger and the
fingerprint JSONL had been written when the checkpointed batch
committed.

The commit order per batch is append-ledger → append-fingerprints →
atomically replace the checkpoint (tmp file + ``os.replace``). Either
append can be torn by a hard kill, and a kill between the appends and
the checkpoint leaves a fully-written batch the checkpoint does not
know about. Both anomalies resolve the same way on resume: truncate
each file back to the checkpoint's recorded offset, then re-run the
batch — which, by the scheduler's determinism guarantee, rewrites the
exact bytes that were cut. No batch is ever duplicated or lost.

The volatile ``env`` section (timestamps, host) is for humans and the
``/campaign`` endpoint; nothing in it feeds restoration.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "Checkpoint",
    "CheckpointError",
    "load_checkpoint",
    "save_checkpoint",
]

CHECKPOINT_SCHEMA_VERSION = 1


class CheckpointError(Exception):
    """An unusable checkpoint: unreadable, wrong schema, or
    inconsistent with the files it points at."""


@dataclass
class Checkpoint:
    """One committed campaign position.

    ``state`` is the :meth:`CampaignState.to_json` payload verbatim;
    ``ledger_bytes``/``fingerprints_bytes`` are the sizes the output
    files had after the last committed batch (resume truncates back to
    them); ``novel_seen`` remembers whether any committed batch
    witnessed a fingerprint absent from the baseline, because exit
    code 4 must survive a kill/resume even when the novel finding
    landed before the kill.
    """

    state: dict
    ledger_bytes: int = 0
    fingerprints_bytes: int = 0
    novel_seen: bool = False
    env: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "kind": "campaign-checkpoint",
            "state": self.state,
            "offsets": {
                "ledger_bytes": self.ledger_bytes,
                "fingerprints_bytes": self.fingerprints_bytes,
            },
            "novel_seen": self.novel_seen,
            "env": dict(self.env),
        }


def save_checkpoint(path: str, checkpoint: Checkpoint) -> None:
    """Write the checkpoint atomically: a reader (or a crash) sees the
    previous complete snapshot or the new one, never a torn file."""
    payload = json.dumps(checkpoint.to_json(), sort_keys=True, indent=2)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(payload + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def load_checkpoint(path: str) -> Checkpoint:
    """Read a checkpoint back; :class:`CheckpointError` on anything
    unusable (a *missing* file included — the caller decides whether
    that means "fresh campaign" and should check existence first)."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError as exc:
        raise CheckpointError(f"{path}: no checkpoint") from exc
    except ValueError as exc:
        raise CheckpointError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"{path}: expected a JSON object")
    version = payload.get("schema_version")
    if version != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"{path}: schema_version {version!r}, "
            f"this build reads {CHECKPOINT_SCHEMA_VERSION}"
        )
    state = payload.get("state")
    if not isinstance(state, dict) or "config" not in state:
        raise CheckpointError(f"{path}: missing campaign state")
    offsets = payload.get("offsets", {})
    try:
        ledger_bytes = int(offsets["ledger_bytes"])
        fingerprints_bytes = int(offsets["fingerprints_bytes"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"{path}: missing byte offsets") from exc
    if ledger_bytes < 0 or fingerprints_bytes < 0:
        raise CheckpointError(f"{path}: negative byte offsets")
    return Checkpoint(
        state=state,
        ledger_bytes=ledger_bytes,
        fingerprints_bytes=fingerprints_bytes,
        novel_seen=bool(payload.get("novel_seen", False)),
        env=dict(payload.get("env", {})),
    )
