"""The always-on campaign service: the scheduler the ledger was for.

PR 8 shipped the observability half (ledger, clustering, ``repro
status``); this package ships the half that feeds it perpetually. A
:class:`CampaignService` streams seeded batches from
:mod:`repro.fuzz.scheduler` through the sharded
:mod:`repro.crosstest.executor` on an asyncio loop, deduplicates
fingerprints online against the committed baseline as each batch
lands, appends one ledger record per batch, and checkpoints the full
campaign state to JSON so a killed campaign resumes *exactly* where it
stopped — SIGINT/SIGTERM drain the in-flight batch, commit it, write
the checkpoint, and exit cleanly.

The determinism contract is the hard part and the whole point: a
campaign killed mid-run and resumed from its checkpoint emits
byte-identical fingerprint JSONL and canonical ledger records to an
uninterrupted run of the same seed, at any ``--jobs``/pool setting.
:mod:`repro.campaign.checkpoint` carries the crash-safe commit
protocol (byte-offset truncation on resume); the byte-identity grid in
``tests/campaign/`` and the ``campaign-smoke`` CI job pin the
guarantee.
"""

from repro.campaign.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.campaign.service import (
    CampaignService,
    CampaignSummary,
    fingerprint_lines,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CampaignService",
    "CampaignSummary",
    "Checkpoint",
    "CheckpointError",
    "fingerprint_lines",
    "load_checkpoint",
    "save_checkpoint",
]
