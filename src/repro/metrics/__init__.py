"""Monitoring substrate: metric registries, scraping, quota consumers."""

from repro.metrics.quota import QuotaExceededError, QuotaSystem, ServiceUnderQuota
from repro.metrics.registry import (
    AbsentPolicy,
    Counter,
    Gauge,
    MetricError,
    MetricsRegistry,
)

__all__ = [
    "QuotaExceededError",
    "QuotaSystem",
    "ServiceUnderQuota",
    "AbsentPolicy",
    "Counter",
    "Gauge",
    "MetricError",
    "MetricsRegistry",
]
