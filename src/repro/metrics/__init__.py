"""Monitoring substrate: metric registries, scraping, quota consumers."""

from repro.metrics.caches import (
    cache_info_snapshot,
    cache_stats_registry,
    clear_tracked_caches,
    tracked_caches,
)
from repro.metrics.quota import QuotaExceededError, QuotaSystem, ServiceUnderQuota
from repro.metrics.registry import (
    DEFAULT_LATENCY_BUCKETS,
    AbsentPolicy,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    quantile_from_snapshot,
)

__all__ = [
    "QuotaExceededError",
    "QuotaSystem",
    "ServiceUnderQuota",
    "AbsentPolicy",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "cache_info_snapshot",
    "cache_stats_registry",
    "clear_tracked_caches",
    "quantile_from_snapshot",
    "tracked_caches",
]
