"""A monitoring substrate: metrics, registration, and scraping.

§6.2.2 and the paper's flagship incident (§1) are about monitoring data
crossing system boundaries: "a deregistered monitor reported a value
'0' for the resource usage to the quota system, which misinterpreted
zero as the expected load". The discrepancy lives precisely in what a
*missing* metric reads as — so this registry makes that choice explicit
and configurable per scrape (:class:`AbsentPolicy`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "MetricError",
    "AbsentPolicy",
    "Gauge",
    "Counter",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "quantile_from_snapshot",
]

#: Bucket upper bounds (seconds) sized for sub-millisecond trial work.
DEFAULT_LATENCY_BUCKETS = (
    0.00001,
    0.000025,
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
)


class MetricError(ReproError):
    """A metric operation failed."""


class AbsentPolicy(enum.Enum):
    """What a scrape reports for a metric that is not registered.

    ``ZERO`` is the historical behaviour behind the GCP User-ID outage:
    downstream consumers cannot distinguish "no load" from "no monitor".
    ``ABSENT`` surfaces the difference (the scrape returns ``None``).
    ``ERROR`` refuses the read outright.
    """

    ZERO = "zero"
    ABSENT = "absent"
    ERROR = "error"


@dataclass
class Gauge:
    name: str
    value: float = 0.0
    description: str = ""

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Counter:
    name: str
    value: float = 0.0
    description: str = ""

    def increment(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"{self.name}: counters only move forward")
        self.value += amount


@dataclass
class Histogram:
    """A cumulative-bucket latency/size histogram.

    ``value`` reads as the observation count so that scrapes treat a
    histogram like any other metric (the distribution itself travels
    via :meth:`snapshot`).
    """

    name: str
    buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    description: str = ""

    def __post_init__(self) -> None:
        if tuple(self.buckets) != tuple(sorted(self.buckets)):
            raise MetricError(f"{self.name}: buckets must be sorted")
        self._counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0

    @property
    def value(self) -> float:
        return float(self._count)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[index] += 1
                return
        self._counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket bounds (upper-bound biased)."""
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"{self.name}: quantile {q} out of [0, 1]")
        if not self._count:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for index, bound in enumerate(self.buckets):
            cumulative += self._counts[index]
            if cumulative >= rank:
                return bound
        return self.buckets[-1] if self.buckets else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same buckets) into this one."""
        if tuple(other.buckets) != tuple(self.buckets):
            raise MetricError(
                f"{self.name}: cannot merge histogram with different buckets"
            )
        for index, count in enumerate(other._counts):
            self._counts[index] += count
        self._count += other._count
        self._sum += other._sum

    def snapshot(self) -> dict:
        return {
            "count": self._count,
            "sum": self._sum,
            "buckets": {
                str(bound): self._counts[index]
                for index, bound in enumerate(self.buckets)
            },
            "overflow": self._counts[-1],
        }


@dataclass
class MetricsRegistry:
    """One system's exported metrics, scraped by other systems."""

    system: str
    _metrics: dict[str, Gauge | Counter | Histogram] = field(default_factory=dict)
    #: names that were registered once but have since been deregistered
    _deregistered: set[str] = field(default_factory=set)

    # -- registration ------------------------------------------------------

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._register(Gauge(name, description=description))

    def counter(self, name: str, description: str = "") -> Counter:
        return self._register(Counter(name, description=description))

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        description: str = "",
    ) -> Histogram:
        return self._register(
            Histogram(name, buckets=buckets, description=description)
        )

    def _register(self, metric):
        if name_exists := self._metrics.get(metric.name):
            return name_exists
        self._metrics[metric.name] = metric
        self._deregistered.discard(metric.name)
        return metric

    def deregister(self, name: str) -> None:
        """Remove a metric (e.g. its reporter was decommissioned)."""
        if name in self._metrics:
            del self._metrics[name]
            self._deregistered.add(name)

    def is_registered(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Gauge | Counter | Histogram | None:
        """The registered metric object itself, or ``None``.

        The public counterpart of reaching into ``_metrics``: exporters
        that need more than :meth:`read`'s scalar (histogram snapshots,
        descriptions) go through here.
        """
        return self._metrics.get(name)

    def items(self) -> list[tuple[str, Gauge | Counter | Histogram]]:
        """``(name, metric)`` pairs in name order — the iteration API
        exporters and renderers use instead of the private dict."""
        return sorted(self._metrics.items())

    # -- scraping -------------------------------------------------------------

    def read(
        self, name: str, absent_policy: AbsentPolicy = AbsentPolicy.ZERO
    ) -> float | None:
        """What a cross-system consumer sees for ``name``."""
        metric = self._metrics.get(name)
        if metric is not None:
            return metric.value
        if absent_policy is AbsentPolicy.ZERO:
            # the GCP-outage behaviour: silence reads as zero
            return 0.0
        if absent_policy is AbsentPolicy.ABSENT:
            return None
        raise MetricError(
            f"{self.system}: metric {name!r} is not registered"
            + (" (was deregistered)" if name in self._deregistered else "")
        )

    def scrape(
        self, absent_policy: AbsentPolicy = AbsentPolicy.ZERO
    ) -> dict[str, float]:
        del absent_policy  # registered metrics are never absent here
        return {name: metric.value for name, metric in sorted(self._metrics.items())}

    def snapshot(self) -> dict[str, dict]:
        """Every registered metric as plain JSON-ready data.

        ``{name: {"kind": "gauge"|"counter"|"histogram", ...}}`` in name
        order. Gauges and counters carry ``value``; histograms carry
        ``count``/``sum``/``buckets``/``overflow`` (the same shape as
        :meth:`Histogram.snapshot`, with buckets in ascending-bound
        order). This is the one export surface — ``--metrics-json``,
        ``trace summarize``, the campaign ledger and the status server
        all read it — so nothing outside this module needs to know which
        concrete metric class sits behind a name.
        """
        out: dict[str, dict] = {}
        for name, metric in self.items():
            if isinstance(metric, Histogram):
                out[name] = {"kind": "histogram", **metric.snapshot()}
            elif isinstance(metric, Counter):
                out[name] = {"kind": "counter", "value": metric.value}
            else:
                out[name] = {"kind": "gauge", "value": metric.value}
        return out


def quantile_from_snapshot(entry: dict, q: float) -> float:
    """:meth:`Histogram.quantile`, recomputed from a snapshot entry.

    ``entry`` is one histogram value out of
    :meth:`MetricsRegistry.snapshot` (or its JSON round trip — bucket
    keys are stringified bounds and stay in ascending order either
    way), so consumers can derive percentiles without holding the live
    :class:`Histogram` object. Upper-bound biased, exactly like the
    live method.
    """
    if not 0.0 <= q <= 1.0:
        raise MetricError(f"quantile {q} out of [0, 1]")
    count = int(entry.get("count", 0))
    buckets = entry.get("buckets", {})
    if not count:
        return 0.0
    rank = q * count
    cumulative = 0
    bound = 0.0
    for text, bucket_count in buckets.items():
        bound = float(text)
        cumulative += int(bucket_count)
        if cumulative >= rank:
            return bound
    return bound if buckets else 0.0
