"""A monitoring substrate: metrics, registration, and scraping.

§6.2.2 and the paper's flagship incident (§1) are about monitoring data
crossing system boundaries: "a deregistered monitor reported a value
'0' for the resource usage to the quota system, which misinterpreted
zero as the expected load". The discrepancy lives precisely in what a
*missing* metric reads as — so this registry makes that choice explicit
and configurable per scrape (:class:`AbsentPolicy`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "MetricError",
    "AbsentPolicy",
    "Gauge",
    "Counter",
    "MetricsRegistry",
]


class MetricError(ReproError):
    """A metric operation failed."""


class AbsentPolicy(enum.Enum):
    """What a scrape reports for a metric that is not registered.

    ``ZERO`` is the historical behaviour behind the GCP User-ID outage:
    downstream consumers cannot distinguish "no load" from "no monitor".
    ``ABSENT`` surfaces the difference (the scrape returns ``None``).
    ``ERROR`` refuses the read outright.
    """

    ZERO = "zero"
    ABSENT = "absent"
    ERROR = "error"


@dataclass
class Gauge:
    name: str
    value: float = 0.0
    description: str = ""

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Counter:
    name: str
    value: float = 0.0
    description: str = ""

    def increment(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"{self.name}: counters only move forward")
        self.value += amount


@dataclass
class MetricsRegistry:
    """One system's exported metrics, scraped by other systems."""

    system: str
    _metrics: dict[str, Gauge | Counter] = field(default_factory=dict)
    #: names that were registered once but have since been deregistered
    _deregistered: set[str] = field(default_factory=set)

    # -- registration ------------------------------------------------------

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._register(Gauge(name, description=description))

    def counter(self, name: str, description: str = "") -> Counter:
        return self._register(Counter(name, description=description))

    def _register(self, metric):
        if name_exists := self._metrics.get(metric.name):
            return name_exists
        self._metrics[metric.name] = metric
        self._deregistered.discard(metric.name)
        return metric

    def deregister(self, name: str) -> None:
        """Remove a metric (e.g. its reporter was decommissioned)."""
        if name in self._metrics:
            del self._metrics[name]
            self._deregistered.add(name)

    def is_registered(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # -- scraping -------------------------------------------------------------

    def read(
        self, name: str, absent_policy: AbsentPolicy = AbsentPolicy.ZERO
    ) -> float | None:
        """What a cross-system consumer sees for ``name``."""
        metric = self._metrics.get(name)
        if metric is not None:
            return metric.value
        if absent_policy is AbsentPolicy.ZERO:
            # the GCP-outage behaviour: silence reads as zero
            return 0.0
        if absent_policy is AbsentPolicy.ABSENT:
            return None
        raise MetricError(
            f"{self.system}: metric {name!r} is not registered"
            + (" (was deregistered)" if name in self._deregistered else "")
        )

    def scrape(
        self, absent_policy: AbsentPolicy = AbsentPolicy.ZERO
    ) -> dict[str, float]:
        del absent_policy  # registered metrics are never absent here
        return {name: metric.value for name, metric in sorted(self._metrics.items())}
