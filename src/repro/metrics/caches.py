"""Cache observability: every process-wide memo as scrapeable metrics.

The prepared-execution layer leans on a family of ``lru_cache``-style
memos (statement/type parsing, compiled cast kernels, serializer
instances, path normalization). This module names each one and exposes
its ``cache_info()`` through the same :class:`MetricsRegistry` substrate
the rest of the simulation scrapes — so cache behaviour crosses system
boundaries the way §6.2.2 says monitoring data should: explicitly.

Per-session caches (each deployment's plan cache) are *not* listed here;
their counters travel with :class:`repro.crosstest.CrossTestMetrics`
because they are scoped to a deployment, not to the process.
"""

from __future__ import annotations

from typing import Callable

from repro.metrics.registry import MetricsRegistry

__all__ = [
    "tracked_caches",
    "cache_info_snapshot",
    "cache_stats_registry",
    "clear_tracked_caches",
]


def tracked_caches() -> dict[str, Callable]:
    """Name -> memoized callable for every process-wide cache.

    Imports happen inside the function: this module sits below
    ``repro.metrics`` and must not force the SQL/engine stack into every
    metrics import.
    """
    from repro.common.types import parse_type
    from repro.connectors.transformers import transformer_for
    from repro.formats import _serializer_instance
    from repro.hivelite.casts import hive_read_kernel, hive_write_kernel
    from repro.sparklite.casts import cast_kernel, store_assign_kernel
    from repro.sparklite.dataframe import dataframe_store_kernel
    from repro.sql.parser import parse_statement
    from repro.storage.namenode import _dirname, _normalize_path

    return {
        "sql.parse_statement": parse_statement,
        "types.parse_type": parse_type,
        "spark.cast_kernel": cast_kernel,
        "spark.store_assign_kernel": store_assign_kernel,
        "spark.dataframe_store_kernel": dataframe_store_kernel,
        "hive.write_kernel": hive_write_kernel,
        "hive.read_kernel": hive_read_kernel,
        "connectors.transformer_for": transformer_for,
        "formats.serializer_instance": _serializer_instance,
        "storage.normalize_path": _normalize_path,
        "storage.dirname": _dirname,
    }


def cache_info_snapshot() -> dict[str, dict[str, int]]:
    """``cache_info()`` for every tracked cache, as plain dicts."""
    snapshot: dict[str, dict[str, int]] = {}
    for name, fn in sorted(tracked_caches().items()):
        info = fn.cache_info()
        snapshot[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "maxsize": info.maxsize,
            "currsize": info.currsize,
        }
    return snapshot


def cache_stats_registry(system: str = "repro.caches") -> MetricsRegistry:
    """A registry with one gauge per ``<cache>.<field>``.

    Gauges, not counters: ``cache_info()`` is cumulative already and a
    re-scrape must be able to re-set values after a ``cache_clear()``.
    """
    registry = MetricsRegistry(system)
    for name, info in cache_info_snapshot().items():
        for stat_name, value in info.items():
            gauge = registry.gauge(
                f"{name}.{stat_name}",
                description=f"lru_cache {stat_name} of {name}",
            )
            gauge.set(value if value is not None else -1)
    return registry


def clear_tracked_caches() -> None:
    """Reset every tracked cache (test isolation helper)."""
    for fn in tracked_caches().values():
        fn.cache_clear()
