"""A quota system driven by monitoring data (the §1 incident shape).

The quota autoscaler periodically reads a service's reported usage and
right-sizes its quota. Its defect is the cross-system discrepancy of
the GCP User-ID incident: it cannot tell "usage is zero" from "the
monitor is gone", because the monitoring system's scrape interface
reports both as ``0`` under :attr:`AbsentPolicy.ZERO`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.events import EventLoop, Process
from repro.errors import ReproError
from repro.metrics.registry import AbsentPolicy, MetricsRegistry

__all__ = ["QuotaExceededError", "QuotaSystem", "ServiceUnderQuota"]


class QuotaExceededError(ReproError):
    """A request was rejected because the quota is exhausted."""


@dataclass
class ServiceUnderQuota:
    """A service whose capacity is capped by the quota system."""

    name: str
    quota: float
    current_load: float = 0.0
    rejected_requests: int = 0

    def handle_load(self, load: float) -> None:
        self.current_load = load
        if load > self.quota:
            self.rejected_requests += int(load - self.quota)
            raise QuotaExceededError(
                f"{self.name}: load {load} exceeds quota {self.quota}"
            )


class QuotaSystem(Process):
    """Periodically right-sizes a service's quota from monitoring data."""

    def __init__(
        self,
        loop: EventLoop,
        service: ServiceUnderQuota,
        monitoring: MetricsRegistry,
        usage_metric: str,
        *,
        interval_ms: int = 60_000,
        headroom: float = 1.25,
        minimum_quota: float = 10.0,
        absent_policy: AbsentPolicy = AbsentPolicy.ZERO,
    ) -> None:
        super().__init__(loop, "quota-system")
        self.service = service
        self.monitoring = monitoring
        self.usage_metric = usage_metric
        self.interval_ms = interval_ms
        self.headroom = headroom
        self.minimum_quota = minimum_quota
        self.absent_policy = absent_policy
        self.adjustments: list[tuple[int, float | None, float]] = []

    def start(self) -> None:
        self.schedule(self.interval_ms, self._adjust, "quota-adjust")

    def _adjust(self) -> None:
        usage = self.monitoring.read(self.usage_metric, self.absent_policy)
        if usage is None:
            # the fixed behaviour: an absent metric changes nothing
            self.adjustments.append((self.now_ms, None, self.service.quota))
        else:
            new_quota = max(self.minimum_quota, usage * self.headroom)
            self.service.quota = new_quota
            self.adjustments.append((self.now_ms, usage, new_quota))
        self.schedule(self.interval_ms, self._adjust, "quota-adjust")
