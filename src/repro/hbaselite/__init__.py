"""Mini HBase: WAL, regions, master — over the shared HDFS-like store."""

from repro.hbaselite.master import HBaseMaster
from repro.hbaselite.region import Region
from repro.hbaselite.wal import WalEntry, WriteAheadLog

__all__ = ["HBaseMaster", "Region", "WalEntry", "WriteAheadLog"]
