"""Write-ahead log for the HBase-like store, backed by the shared
filesystem — the HBase↔HDFS interaction surface of Table 1."""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.filesystem import FileSystem

__all__ = ["WalEntry", "WriteAheadLog"]


@dataclass(frozen=True)
class WalEntry:
    sequence: int
    operation: str  # "put" | "delete"
    row: str
    columns: dict[str, str]


class WriteAheadLog:
    """Append-only log of mutations, one JSON line per entry."""

    def __init__(self, filesystem: FileSystem, path: str) -> None:
        self.filesystem = filesystem
        self.path = path
        self._next_sequence = self._recover_sequence()

    def _recover_sequence(self) -> int:
        if not self.filesystem.exists(self.path):
            return 0
        return sum(
            1 for line in self.filesystem.read(self.path).splitlines() if line
        )

    def append(self, operation: str, row: str, columns: dict[str, str]) -> WalEntry:
        entry = WalEntry(self._next_sequence, operation, row, dict(columns))
        line = (
            json.dumps(
                {
                    "seq": entry.sequence,
                    "op": entry.operation,
                    "row": entry.row,
                    "cols": entry.columns,
                }
            )
            + "\n"
        ).encode("utf-8")
        if self.filesystem.exists(self.path):
            self.filesystem.append(self.path, line)
        else:
            self.filesystem.write(self.path, line, overwrite=False)
        self._next_sequence += 1
        return entry

    def replay(self) -> list[WalEntry]:
        if not self.filesystem.exists(self.path):
            return []
        entries = []
        for line in self.filesystem.read(self.path).splitlines():
            if not line:
                continue
            try:
                raw = json.loads(line)
            except ValueError as exc:
                raise StorageError(f"corrupt WAL line in {self.path}") from exc
            entries.append(
                WalEntry(raw["seq"], raw["op"], raw["row"], raw["cols"])
            )
        return entries

    def truncate(self) -> None:
        self.filesystem.write(self.path, b"", overwrite=True)
        self._next_sequence = 0
