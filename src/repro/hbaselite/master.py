"""The HBase master: startup against HDFS and table lifecycle.

The startup sequence is where HBASE-537 lives: the master probes the
NameNode (reads succeed even in safe mode), then initializes its root
directory layout — a *mutation*, rejected while safe mode holds. The
``wait_for_writes`` flag selects the fixed behaviour (poll safe mode
before mutating).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.hbaselite.region import Region
from repro.storage.filesystem import FileSystem

__all__ = ["HBaseMaster"]


@dataclass
class HBaseMaster:
    filesystem: FileSystem
    root_dir: str = "/hbase"
    started: bool = False
    _tables: dict[str, Region] = field(default_factory=dict)

    # -- startup ----------------------------------------------------------

    def start(self, *, wait_for_writes: bool = False) -> None:
        """Initialize the on-HDFS layout; raises in safe mode (537)."""
        # the deceptive liveness probe: reads work during safe mode
        if not self.filesystem.exists("/"):
            raise StorageError("namenode unreachable")
        if wait_for_writes:
            # fixed behaviour: explicitly wait out safe mode (the
            # simulated namenode leaves it on request)
            self.filesystem.namenode.leave_safe_mode()
        self.filesystem.mkdirs(f"{self.root_dir}/WALs")
        self.filesystem.mkdirs(f"{self.root_dir}/data")
        self.started = True
        # re-open any table directories that already exist (recovery)
        data_dir = f"{self.root_dir}/data"
        for status in self.filesystem.listdir(data_dir):
            if status.is_directory:
                name = status.path.rsplit("/", 1)[-1]
                self._tables[name] = Region(
                    name, self.filesystem, self.root_dir
                )

    def _check_started(self) -> None:
        if not self.started:
            raise StorageError("hbase master is not started")

    # -- table lifecycle -------------------------------------------------------

    def create_table(self, name: str) -> Region:
        self._check_started()
        if name in self._tables:
            raise StorageError(f"hbase table {name!r} exists")
        region = Region(name, self.filesystem, self.root_dir)
        self._tables[name] = region
        return region

    def table(self, name: str) -> Region:
        self._check_started()
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(f"unknown hbase table {name!r}") from None

    def table_exists(self, name: str) -> bool:
        return name in self._tables

    def drop_table(self, name: str) -> None:
        self._check_started()
        region = self.table(name)
        if self.filesystem.exists(region.hfile_dir):
            self.filesystem.delete(region.hfile_dir, recursive=True)
        if self.filesystem.exists(region.wal.path):
            self.filesystem.delete(region.wal.path)
        del self._tables[name]

    def list_tables(self) -> list[str]:
        return sorted(self._tables)
