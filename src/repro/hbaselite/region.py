"""Regions: the KV storage unit.

All cell values are **strings of bytes** from HBase's perspective —
there is no schema below the row/column names. That property is why
Table 5 records *zero* data-plane CSI failures for key-value tuples:
there is almost no metadata for two systems to disagree about. The
disagreements reappear the moment a typed system (Hive's storage
handler) is layered on top.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.hbaselite.wal import WriteAheadLog
from repro.storage.filesystem import FileSystem

__all__ = ["Region"]


@dataclass
class Region:
    """One region: a memstore plus flushed HFiles, WAL-protected."""

    table: str
    filesystem: FileSystem
    root_dir: str = "/hbase"
    _memstore: dict[str, dict[str, str]] = field(default_factory=dict)
    _flushed: dict[str, dict[str, str]] = field(default_factory=dict)
    _hfile_count: int = 0

    def __post_init__(self) -> None:
        self.wal = WriteAheadLog(
            self.filesystem, f"{self.root_dir}/WALs/{self.table}.wal"
        )
        self._load_hfiles()
        self._replay_wal()

    # -- client API ------------------------------------------------------

    def put(self, row: str, columns: dict[str, str]) -> None:
        if not row:
            raise StorageError("row key cannot be empty")
        self.wal.append("put", row, columns)
        self._apply_put(row, columns)

    def delete(self, row: str) -> None:
        self.wal.append("delete", row, {})
        self._apply_delete(row)

    def get(self, row: str) -> dict[str, str] | None:
        merged: dict[str, str] = {}
        if row in self._flushed:
            merged.update(self._flushed[row])
        if row in self._memstore:
            merged.update(self._memstore[row])
        return merged or None

    def scan(self, start: str = "", stop: str | None = None):
        """Rows in key order within [start, stop)."""
        rows = sorted(set(self._flushed) | set(self._memstore))
        for row in rows:
            if row < start:
                continue
            if stop is not None and row >= stop:
                break
            value = self.get(row)
            if value is not None:
                yield row, value

    def row_count(self) -> int:
        return sum(1 for _ in self.scan())

    # -- persistence -----------------------------------------------------------

    @property
    def hfile_dir(self) -> str:
        return f"{self.root_dir}/data/{self.table}"

    def flush(self) -> str:
        """Write the memstore to a new HFile and clear the WAL."""
        for row, columns in self._memstore.items():
            existing = self._flushed.setdefault(row, {})
            existing.update(columns)
        path = f"{self.hfile_dir}/hfile-{self._hfile_count:05d}.json"
        self._hfile_count += 1
        payload = json.dumps(
            {row: cols for row, cols in sorted(self._flushed.items())}
        ).encode("utf-8")
        self.filesystem.mkdirs(self.hfile_dir)
        self.filesystem.write(path, payload)
        self._memstore.clear()
        self.wal.truncate()
        return path

    def _load_hfiles(self) -> None:
        if not self.filesystem.exists(self.hfile_dir):
            return
        for status in self.filesystem.listdir(self.hfile_dir):
            payload = json.loads(self.filesystem.read(status.path))
            for row, columns in payload.items():
                self._flushed.setdefault(row, {}).update(columns)
            self._hfile_count += 1

    def _replay_wal(self) -> None:
        for entry in self.wal.replay():
            if entry.operation == "put":
                self._apply_put(entry.row, entry.columns)
            elif entry.operation == "delete":
                self._apply_delete(entry.row)

    def _apply_put(self, row: str, columns: dict[str, str]) -> None:
        self._memstore.setdefault(row, {}).update(columns)

    def _apply_delete(self, row: str) -> None:
        self._memstore.pop(row, None)
        self._flushed.pop(row, None)
