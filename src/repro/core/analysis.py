"""The study's analysis engine: regenerate Tables 1-9 and Findings 1-13
(plus Finding 15 from the §8 case study) from the encoded datasets —
the same role the paper's ``reproduce_study.ipynb`` artifact plays.
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass, field

from repro.core.failure import CBSIssue, CloudIncident, CSIFailure
from repro.core.taxonomy import (
    ApiMisuseKind,
    ConfigKind,
    ConfigPattern,
    ControlPattern,
    DataAbstraction,
    DataPattern,
    DataProperty,
    FixLocation,
    FixPattern,
    MgmtKind,
    Plane,
    Symptom,
    SymptomGroup,
)

__all__ = [
    "Table",
    "Finding",
    "table1_interactions",
    "table2_planes",
    "table3_symptoms",
    "table4_data_properties",
    "table5_abstractions",
    "table6_patterns",
    "table7_config_patterns",
    "table8_control_patterns",
    "table9_fixes",
    "incident_statistics",
    "cbs_statistics",
    "compute_findings",
]


@dataclass
class Table:
    """A rendered table: ordered (label, count) rows plus a total."""

    number: int
    title: str
    rows: list[tuple[str, int]]
    total: int

    def as_dict(self) -> dict[str, int]:
        return dict(self.rows)

    def render(self) -> str:
        width = max((len(label) for label, _ in self.rows), default=10)
        lines = [f"Table {self.number}. {self.title}"]
        for label, count in self.rows:
            pct = f"({count / self.total:.0%})" if self.total else ""
            lines.append(f"  {label:<{width}}  {count:>4} {pct}")
        lines.append(f"  {'Total':<{width}}  {self.total:>4}")
        return "\n".join(lines)


@dataclass
class Finding:
    number: int
    claim: str
    observed: dict[str, object] = field(default_factory=dict)
    holds: bool = True

    def render(self) -> str:
        status = "REPRODUCED" if self.holds else "NOT REPRODUCED"
        return f"Finding {self.number} [{status}]: {self.claim}\n  observed: {self.observed}"


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def table1_interactions(failures: tuple[CSIFailure, ...]) -> Table:
    counts = Counter(
        (f.upstream, f.downstream, f.interaction) for f in failures
    )
    rows = [
        (f"{up} -> {down} [{interaction}]", count)
        for (up, down, interaction), count in sorted(
            counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
    ]
    return Table(1, "Target systems and their interactions", rows, len(failures))


def table2_planes(failures: tuple[CSIFailure, ...]) -> Table:
    counts = Counter(f.plane for f in failures)
    rows = [
        ("Control", counts[Plane.CONTROL]),
        ("Data", counts[Plane.DATA]),
        ("Management", counts[Plane.MANAGEMENT]),
    ]
    return Table(2, "Categorization by planes", rows, len(failures))


def table3_symptoms(failures: tuple[CSIFailure, ...]) -> Table:
    counts = Counter(f.symptom for f in failures)
    rows = []
    for group in (SymptomGroup.SYSTEM, SymptomGroup.JOB, SymptomGroup.OPERATION):
        for symptom in Symptom:
            if symptom.group is group and counts.get(symptom, 0):
                rows.append(
                    (f"[{group.value}] {symptom.label}", counts[symptom])
                )
    return Table(3, "Failure symptoms", rows, len(failures))


def _data_cases(failures) -> list[CSIFailure]:
    return [f for f in failures if f.plane is Plane.DATA]


def table4_data_properties(failures: tuple[CSIFailure, ...]) -> Table:
    data = _data_cases(failures)
    counts = Counter(f.data_property for f in data)
    rows = [
        ("Address", counts[DataProperty.ADDRESS]),
        (
            "Schema",
            counts[DataProperty.SCHEMA_STRUCTURE]
            + counts[DataProperty.SCHEMA_VALUE],
        ),
        ("  Structure", counts[DataProperty.SCHEMA_STRUCTURE]),
        ("  Value", counts[DataProperty.SCHEMA_VALUE]),
        ("Custom property", counts[DataProperty.CUSTOM_PROPERTY]),
        ("API semantics", counts[DataProperty.API_SEMANTICS]),
    ]
    return Table(4, "Data properties of data-plane discrepancies", rows, len(data))


def table5_abstractions(
    failures: tuple[CSIFailure, ...],
) -> dict[str, dict[str, int]]:
    """The Table 5 matrix: abstraction x property."""
    data = _data_cases(failures)
    matrix: dict[str, dict[str, int]] = {}
    for abstraction in DataAbstraction:
        row = {
            "Address": 0,
            "Struct.": 0,
            "Value": 0,
            "Custom prop.": 0,
            "API semantics": 0,
            "Total": 0,
        }
        for case in data:
            if case.data_abstraction is not abstraction:
                continue
            key = {
                DataProperty.ADDRESS: "Address",
                DataProperty.SCHEMA_STRUCTURE: "Struct.",
                DataProperty.SCHEMA_VALUE: "Value",
                DataProperty.CUSTOM_PROPERTY: "Custom prop.",
                DataProperty.API_SEMANTICS: "API semantics",
            }[case.data_property]
            row[key] += 1
            row["Total"] += 1
        matrix[abstraction.value] = row
    return matrix


def table6_patterns(failures: tuple[CSIFailure, ...]) -> Table:
    data = _data_cases(failures)
    counts = Counter(f.data_pattern for f in data)
    rows = [(pattern.value, counts[pattern]) for pattern in DataPattern]
    return Table(6, "Data-plane discrepancy patterns", rows, len(data))


def table7_config_patterns(failures: tuple[CSIFailure, ...]) -> Table:
    config = [
        f
        for f in failures
        if f.plane is Plane.MANAGEMENT and f.mgmt_kind is MgmtKind.CONFIGURATION
    ]
    counts = Counter(f.config_pattern for f in config)
    rows = [(pattern.value, counts[pattern]) for pattern in ConfigPattern]
    return Table(7, "Configuration-related discrepancy patterns", rows, len(config))


def table8_control_patterns(failures: tuple[CSIFailure, ...]) -> Table:
    control = [f for f in failures if f.plane is Plane.CONTROL]
    counts = Counter(f.control_pattern for f in control)
    rows = [(pattern.value, counts[pattern]) for pattern in ControlPattern]
    return Table(8, "Control-plane discrepancy patterns", rows, len(control))


def table9_fixes(failures: tuple[CSIFailure, ...]) -> Table:
    counts = Counter(f.fix_pattern for f in failures)
    rows = [(pattern.value, counts[pattern]) for pattern in FixPattern]
    return Table(9, "Fix patterns", rows, len(failures))


# ---------------------------------------------------------------------------
# Incident / CBS statistics (§3, §4)
# ---------------------------------------------------------------------------


def incident_statistics(incidents: tuple[CloudIncident, ...]) -> dict[str, object]:
    csi = [i for i in incidents if i.is_csi]
    durations = sorted(i.duration_minutes for i in csi)
    return {
        "total": len(incidents),
        "csi": len(csi),
        "csi_fraction": len(csi) / len(incidents),
        "min_duration_minutes": durations[0],
        "median_duration_minutes": int(statistics.median(durations)),
        "max_duration_minutes": durations[-1],
        "impaired_external": sum(
            1 for i in csi if i.impaired_external_services
        ),
        "mention_interaction_fix": sum(
            1 for i in csi if i.mentions_interaction_fix
        ),
        "by_provider": dict(Counter(i.provider for i in incidents)),
    }


def cbs_statistics(issues: tuple[CBSIssue, ...]) -> dict[str, object]:
    csi = [i for i in issues if i.is_csi]
    control = sum(1 for i in csi if i.plane is Plane.CONTROL)
    return {
        "total": len(issues),
        "csi": len(csi),
        "dependency": sum(1 for i in issues if i.is_dependency),
        "not_cross_system": sum(
            1 for i in issues if not i.is_csi and not i.is_dependency
        ),
        "control_plane_csi": control,
        "control_plane_fraction": control / len(csi),
    }


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------


def compute_findings(
    failures: tuple[CSIFailure, ...],
    incidents: tuple[CloudIncident, ...],
    cbs: tuple[CBSIssue, ...],
) -> list[Finding]:
    """Findings 1-13, each checked against the encoded datasets."""
    findings: list[Finding] = []
    data = _data_cases(failures)
    mgmt = [f for f in failures if f.plane is Plane.MANAGEMENT]
    control = [f for f in failures if f.plane is Plane.CONTROL]
    fixed = [f for f in failures if f.has_merged_fix]

    stats = incident_statistics(incidents)
    findings.append(
        Finding(
            1,
            "Among 55 cloud incidents, 11 (20%) were caused by CSI failures.",
            {"total": stats["total"], "csi": stats["csi"],
             "median_duration_minutes": stats["median_duration_minutes"]},
            stats["total"] == 55 and stats["csi"] == 11
            and stats["median_duration_minutes"] == 106,
        )
    )

    cbs_stats = cbs_statistics(cbs)
    findings.append(
        Finding(
            2,
            "Plane split 51% data / 32% management / 17% control "
            "(CBS comparison: 69% control).",
            {
                "data": len(data),
                "management": len(mgmt),
                "control": len(control),
                "cbs_control_fraction": round(
                    cbs_stats["control_plane_fraction"], 2
                ),
            },
            (len(data), len(mgmt), len(control)) == (61, 39, 20)
            and abs(cbs_stats["control_plane_fraction"] - 0.69) < 0.01,
        )
    )

    crashing = sum(1 for f in failures if f.symptom.crashing)
    findings.append(
        Finding(
            3,
            "Most (89/120) CSI failures manifest through crashing behavior.",
            {"crashing": crashing, "total": len(failures)},
            crashing == 89,
        )
    )

    typical = sum(1 for f in data if f.data_property.is_typical_metadata)
    custom = sum(
        1 for f in data if f.data_property is DataProperty.CUSTOM_PROPERTY
    )
    findings.append(
        Finding(
            4,
            "50/61 data-plane failures are metadata-caused "
            "(42 typical + 8 custom).",
            {"typical_metadata": typical, "custom_metadata": custom,
             "metadata": typical + custom, "other": len(data) - typical - custom},
            typical == 42 and custom == 8,
        )
    )

    table_cases = sum(
        1 for f in data if f.data_abstraction is DataAbstraction.TABLE
    )
    kv_cases = sum(
        1 for f in data if f.data_abstraction is DataAbstraction.KV_TUPLE
    )
    findings.append(
        Finding(
            5,
            "57% (35/61) of data-plane failures are table-induced; none are "
            "key-value tuple operations.",
            {"table": table_cases, "kv_tuple": kv_cases},
            table_cases == 35 and kv_cases == 0,
        )
    )

    serialization = sum(1 for f in data if f.serialization_rooted)
    findings.append(
        Finding(
            6,
            "25% (15/61) of data-plane failures are root-caused by data "
            "serialization.",
            {"serialization_rooted": serialization},
            serialization == 15,
        )
    )

    config = [f for f in mgmt if f.mgmt_kind is MgmtKind.CONFIGURATION]
    coherence_patterns = (
        ConfigPattern.IGNORANCE,
        ConfigPattern.UNEXPECTED_OVERRIDE,
        ConfigPattern.INCONSISTENT_CONTEXT,
    )
    coherence = sum(1 for f in config if f.config_pattern in coherence_patterns)
    silent = sum(
        1
        for f in config
        if f.config_pattern
        in (ConfigPattern.IGNORANCE, ConfigPattern.UNEXPECTED_OVERRIDE)
    )
    findings.append(
        Finding(
            7,
            "Config-related CSI failures are about coherently configuring "
            "multiple systems (18/30 silently ignored or overruled).",
            {"config_cases": len(config), "coherence_cases": coherence,
             "silently_lost": silent},
            len(config) == 30 and silent == 18,
        )
    )

    parameter = sum(
        1 for f in config if f.config_kind is ConfigKind.PARAMETER
    )
    findings.append(
        Finding(
            8,
            "Parameter issues are the majority (21/30) of config-induced "
            "CSI failures; the rest (9/30) are component-level.",
            {"parameter": parameter, "component": len(config) - parameter},
            parameter == 21,
        )
    )

    monitoring = [f for f in mgmt if f.mgmt_kind is MgmtKind.MONITORING]
    kill_cases = [f for f in monitoring if f.symptom.crashing]
    findings.append(
        Finding(
            9,
            "Monitoring-related CSIs are critical, especially when "
            "monitoring data drives critical actions.",
            {"monitoring_cases": len(monitoring),
             "crashing_monitoring_cases": len(kill_cases)},
            len(monitoring) == 9 and len(kill_cases) >= 1,
        )
    )

    implicit = sum(
        1
        for f in control
        if f.control_pattern
        in (
            ControlPattern.API_SEMANTIC_VIOLATION,
            ControlPattern.STATE_RESOURCE_INCONSISTENCY,
        )
    )
    findings.append(
        Finding(
            10,
            "Most control-plane failures root in implicit properties "
            "(API semantics and state/resource inconsistency).",
            {"implicit_property_cases": implicit, "control_total": len(control)},
            implicit == 18,
        )
    )

    misuse = [
        f
        for f in control
        if f.control_pattern is ControlPattern.API_SEMANTIC_VIOLATION
    ]
    implicit_kind = sum(
        1
        for f in misuse
        if f.api_misuse_kind is ApiMisuseKind.IMPLICIT_SEMANTIC_VIOLATION
    )
    findings.append(
        Finding(
            11,
            "API misuses contribute 13/20 control-plane failures "
            "(8 implicit semantic violations + 5 wrong invocation context).",
            {"api_misuse": len(misuse), "implicit": implicit_kind,
             "wrong_context": len(misuse) - implicit_kind},
            len(misuse) == 13 and implicit_kind == 8,
        )
    )

    check_eh = sum(
        1
        for f in fixed
        if f.fix_pattern in (FixPattern.CHECKING, FixPattern.ERROR_HANDLING)
    )
    findings.append(
        Finding(
            12,
            "40% (46/115) of merged fixes improve checking/error handling "
            "rather than repairing the interaction.",
            {"checking_or_eh": check_eh, "fixed_total": len(fixed)},
            check_eh == 46 and len(fixed) == 115,
        )
    )

    specific = [
        f
        for f in fixed
        if f.fix_location
        in (FixLocation.CONNECTOR, FixLocation.SYSTEM_SPECIFIC)
    ]
    connector = sum(
        1 for f in specific if f.fix_location is FixLocation.CONNECTOR
    )
    downstream_fixed = sum(1 for f in fixed if f.fixed_by_downstream)
    findings.append(
        Finding(
            13,
            "69% (79/115) of fixes land in code specific to the interacting "
            "system; 68 of those 79 (86%) in dedicated connector modules; "
            "all but one fix was implemented by the upstream.",
            {"specific": len(specific), "connector": connector,
             "generic": len(fixed) - len(specific),
             "downstream_fixed": downstream_fixed},
            len(specific) == 79 and connector == 68 and downstream_fixed == 1,
        )
    )
    return findings
