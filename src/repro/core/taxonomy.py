"""The paper's classification taxonomy (§2, §5, §6, §7).

**OCR normalization note (Table 3).** The symptom rows in the provided
paper text are garbled (they sum to 122). We normalized the row set so
that both constraints the prose states hold exactly: the total is 120
and crashing symptoms account for 89/120 (Finding 3). The normalized
rows, with their group and crashing classification, are the
:class:`Symptom` members below.
"""

from __future__ import annotations

import enum

__all__ = [
    "Plane",
    "Severity",
    "SymptomGroup",
    "Symptom",
    "DataAbstraction",
    "DataProperty",
    "DataPattern",
    "MgmtKind",
    "ConfigPattern",
    "ConfigKind",
    "ControlPattern",
    "ApiMisuseKind",
    "FixPattern",
    "FixLocation",
]


class Plane(enum.Enum):
    """The failure plane the interaction manifests on (§2.2)."""

    CONTROL = "control"
    DATA = "data"
    MANAGEMENT = "management"


class Severity(enum.Enum):
    """JIRA severity; the study only admits these three (§4)."""

    BLOCKER = "Blocker"
    CRITICAL = "Critical"
    MAJOR = "Major"


class SymptomGroup(enum.Enum):
    SYSTEM = "system"
    JOB = "job"
    OPERATION = "operation"


class Symptom(enum.Enum):
    """Failure symptoms (Table 3, normalized — see module docstring)."""

    RUNTIME_CRASH_HANG = ("Runtime crash/hang", SymptomGroup.SYSTEM, True)
    STARTUP_FAILURE = ("Startup failure", SymptomGroup.SYSTEM, True)
    SYSTEM_PERFORMANCE = ("Performance issue", SymptomGroup.SYSTEM, False)
    SYSTEM_DATA_LOSS = ("Data loss", SymptomGroup.SYSTEM, False)
    SYSTEM_UNEXPECTED = ("Unexpected behavior", SymptomGroup.SYSTEM, False)
    JOB_TASK_FAILURE = ("Job/task failure", SymptomGroup.JOB, True)
    JOB_TASK_STARTUP = ("Job/task startup failure", SymptomGroup.JOB, True)
    JOB_TASK_CRASH_HANG = ("Job/task crash/hang", SymptomGroup.JOB, True)
    WRONG_RESULTS = ("Wrong results", SymptomGroup.OPERATION, False)
    OPERATION_DATA_LOSS = ("Data loss", SymptomGroup.OPERATION, False)
    REDUCED_OBSERVABILITY = (
        "Reduced observability",
        SymptomGroup.OPERATION,
        False,
    )
    OPERATION_UNEXPECTED = (
        "Unexpected behavior",
        SymptomGroup.OPERATION,
        False,
    )
    OPERATION_PERFORMANCE = (
        "Performance issue",
        SymptomGroup.OPERATION,
        False,
    )
    USABILITY_ISSUE = ("Usability issue", SymptomGroup.OPERATION, False)

    def __init__(self, label: str, group: SymptomGroup, crashing: bool):
        self.label = label
        self.group = group
        self.crashing = crashing


class DataAbstraction(enum.Enum):
    """Data abstractions of Table 5."""

    TABLE = "Table"
    FILE = "File"
    STREAM = "Stream"
    KV_TUPLE = "KV Tuple"


class DataProperty(enum.Enum):
    """Data properties in which data-plane discrepancies root (Table 4)."""

    ADDRESS = "Address"
    SCHEMA_STRUCTURE = "Schema (structure)"
    SCHEMA_VALUE = "Schema (value)"
    CUSTOM_PROPERTY = "Custom property"
    API_SEMANTICS = "API semantics"

    @property
    def is_schema(self) -> bool:
        return self in (DataProperty.SCHEMA_STRUCTURE, DataProperty.SCHEMA_VALUE)

    @property
    def is_typical_metadata(self) -> bool:
        """Finding 4: addresses/names and data schemas."""
        return self is DataProperty.ADDRESS or self.is_schema

    @property
    def is_metadata(self) -> bool:
        return self.is_typical_metadata or self is DataProperty.CUSTOM_PROPERTY


class DataPattern(enum.Enum):
    """Data-plane discrepancy patterns (Table 6)."""

    TYPE_CONFUSION = "Type confusion"
    UNSUPPORTED_OPERATIONS = "Unsupported operations"
    UNSPOKEN_CONVENTION = "Unspoken convention"
    UNDEFINED_VALUES = "Undefined values"
    WRONG_API_ASSUMPTIONS = "Wrong API assumptions"


class MgmtKind(enum.Enum):
    """Management-plane sub-area (§6.2)."""

    CONFIGURATION = "configuration"
    MONITORING = "monitoring"


class ConfigPattern(enum.Enum):
    """Configuration discrepancy patterns (Table 7)."""

    IGNORANCE = "Ignorance"
    UNEXPECTED_OVERRIDE = "Unexpected override"
    INCONSISTENT_CONTEXT = "Inconsistent context"
    MISHANDLING_VALUES = "Mishandling configuration values"


class ConfigKind(enum.Enum):
    """Finding 8: parameter vs component configuration issues."""

    PARAMETER = "parameter"
    COMPONENT = "component"


class ControlPattern(enum.Enum):
    """Control-plane discrepancy patterns (Table 8)."""

    API_SEMANTIC_VIOLATION = "API semantic violation"
    STATE_RESOURCE_INCONSISTENCY = "State/resource inconsistency"
    FEATURE_INCONSISTENCY = "Feature inconsistency"


class ApiMisuseKind(enum.Enum):
    """Finding 11: the two API-misuse sub-patterns."""

    IMPLICIT_SEMANTIC_VIOLATION = "implicit semantic violation"
    WRONG_INVOCATION_CONTEXT = "incorrect invocation context"


class FixPattern(enum.Enum):
    """Fix patterns (Table 9)."""

    CHECKING = "Checking"
    ERROR_HANDLING = "Error handling"
    INTERACTION = "Interaction"
    OTHER = "Others"


class FixLocation(enum.Enum):
    """Where the merged fix landed (Finding 13)."""

    CONNECTOR = "dedicated connector module"
    SYSTEM_SPECIFIC = "code specific to the interacting system"
    GENERIC = "generic code used with multiple systems"
