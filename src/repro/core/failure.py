"""Record models for the study datasets."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.taxonomy import (
    ApiMisuseKind,
    ConfigKind,
    ConfigPattern,
    ControlPattern,
    DataAbstraction,
    DataPattern,
    DataProperty,
    FixLocation,
    FixPattern,
    MgmtKind,
    Plane,
    Severity,
    Symptom,
)
from repro.errors import DatasetError

__all__ = ["CSIFailure", "CloudIncident", "CBSIssue"]


@dataclass(frozen=True)
class CSIFailure:
    """One labeled open-source CSI failure (the 120-case dataset of §4).

    Per-plane label groups are optional but mandatory for their plane:
    a data-plane case must carry abstraction/property/pattern labels, a
    management-plane case its kind (+ config labels when configuration),
    a control-plane case its control pattern (+ misuse kind when the
    pattern is an API misuse).
    """

    case_id: str
    issue_id: str
    upstream: str
    downstream: str
    interaction: str
    plane: Plane
    symptom: Symptom
    severity: Severity
    fix_pattern: FixPattern
    description: str = ""
    synthetic: bool = True

    # data plane
    data_abstraction: DataAbstraction | None = None
    data_property: DataProperty | None = None
    data_pattern: DataPattern | None = None
    serialization_rooted: bool = False

    # management plane
    mgmt_kind: MgmtKind | None = None
    config_pattern: ConfigPattern | None = None
    config_kind: ConfigKind | None = None

    # control plane
    control_pattern: ControlPattern | None = None
    api_misuse_kind: ApiMisuseKind | None = None

    # fix
    fix_location: FixLocation | None = None
    fixed_by_downstream: bool = False

    def __post_init__(self) -> None:
        if self.plane is Plane.DATA:
            if None in (
                self.data_abstraction,
                self.data_property,
                self.data_pattern,
            ):
                raise DatasetError(
                    f"{self.case_id}: data-plane case missing data labels"
                )
        elif self.plane is Plane.MANAGEMENT:
            if self.mgmt_kind is None:
                raise DatasetError(
                    f"{self.case_id}: management-plane case missing kind"
                )
            if self.mgmt_kind is MgmtKind.CONFIGURATION and None in (
                self.config_pattern,
                self.config_kind,
            ):
                raise DatasetError(
                    f"{self.case_id}: configuration case missing labels"
                )
        elif self.plane is Plane.CONTROL:
            if self.control_pattern is None:
                raise DatasetError(
                    f"{self.case_id}: control-plane case missing pattern"
                )
            if (
                self.control_pattern
                is ControlPattern.API_SEMANTIC_VIOLATION
                and self.api_misuse_kind is None
            ):
                raise DatasetError(
                    f"{self.case_id}: API misuse case missing misuse kind"
                )
        if self.fix_pattern is FixPattern.OTHER:
            if self.fix_location is not None:
                raise DatasetError(
                    f"{self.case_id}: unfixed case cannot have a fix location"
                )
        elif self.fix_location is None:
            raise DatasetError(
                f"{self.case_id}: fixed case missing fix location"
            )

    @property
    def has_merged_fix(self) -> bool:
        return self.fix_pattern is not FixPattern.OTHER

    @property
    def pair(self) -> tuple[str, str]:
        return (self.upstream, self.downstream)


@dataclass(frozen=True)
class CloudIncident:
    """One public incident report (§3)."""

    incident_id: str
    provider: str  # gcp | azure | aws
    is_csi: bool
    summary: str = ""
    duration_minutes: int | None = None
    plane: Plane | None = None
    impaired_external_services: bool = False
    mentions_interaction_fix: bool = False


@dataclass(frozen=True)
class CBSIssue:
    """One issue from the 2014 Cloud Bug Study comparison subset (§4)."""

    issue_id: str
    system: str
    is_csi: bool
    is_dependency: bool = False
    plane: Plane | None = None

    def __post_init__(self) -> None:
        if self.is_csi and self.is_dependency:
            raise DatasetError(f"{self.issue_id}: cannot be both CSI and dependency")
        if self.is_csi and self.plane is None:
            raise DatasetError(f"{self.issue_id}: CSI issue needs a plane label")
