"""Co-occurrence analytics over the campaign ledger.

PAPERS.md's "Systemic Flakiness" study found that co-occurring test
failures cluster into a small number of shared root causes, and
"Cross-Project Flakiness" showed those clusters cross project
boundaries — exactly the cross-seam grouping a CSI campaign needs:
counting a Spark↔Hive timestamp discrepancy and the metastore fault it
keeps failing next to as *independent* signals hides their shared
mechanism.

This module groups the ledger's failure items — discrepancy
fingerprints and mis-handled fault sites — by how often they fail in
the *same runs*: Jaccard similarity over each item's run set, then
single-linkage agglomeration above a threshold. Per cluster it reports
flake rate (fraction of ledger runs the cluster failed in), first/last
seen (ledger timestamps), and seam attribution derived from the
fingerprint mechanism (:mod:`repro.crosstest.fingerprint` key fields)
or the fault site.

Everything is order-independent: records are canonically re-ordered
before run indices are assigned, items iterate sorted, and union-find
roots resolve to the smallest member — shuffling the ledger lines
yields byte-identical clusters (pinned by tests).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

__all__ = [
    "Cluster",
    "record_items",
    "item_seam",
    "jaccard",
    "canonical_order",
    "cluster_ledger",
]

#: fingerprint plan-group -> the seam the mechanism lives on
_GROUP_SEAMS = {
    "spark_e2e": "spark<->spark",
    "spark_hive": "spark->hive",
    "hive_spark": "hive->spark",
}

#: below this Jaccard similarity two items are unrelated. 0.5 means
#: "they fail together in at least half of the runs either fails in" —
#: loose enough that two smoke runs already link identical-run-set
#: items (J=1.0), tight enough that an item failing in every run does
#: not absorb one that failed once.
DEFAULT_THRESHOLD = 0.5


@dataclass(frozen=True)
class Cluster:
    """One co-occurrence cluster of failure items."""

    #: sorted item labels (``fp:<fingerprint key>`` /
    #: ``fault:<site>/<operation>:<mode>``)
    members: tuple[str, ...]
    #: canonical-order run indices in which any member failed
    runs: tuple[int, ...]
    #: ``len(runs) / total ledger runs``
    flake_rate: float
    #: ledger ``ts`` bounds over the cluster's runs
    first_seen: float
    last_seen: float
    #: distinct seams the members' mechanisms cross, sorted
    seams: tuple[str, ...]

    def to_json(self) -> dict:
        return {
            "members": list(self.members),
            "runs": list(self.runs),
            "flake_rate": self.flake_rate,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "seams": list(self.seams),
        }


def record_items(record: dict) -> tuple[str, ...]:
    """The failure items one ledger record contributes, sorted.

    Discrepancy fingerprints become ``fp:<key>``; each mis-handled
    fault site becomes ``fault:<site>/<operation>:<mode>`` — the two
    item families the paper's cracks span, in one co-occurrence space.
    """
    results = record.get("results", {})
    items = {f"fp:{key}" for key in results.get("fingerprints", ())}
    faults = results.get("faults") or {}
    for entry in faults.get("mis_handled", ()):
        mode = entry.get("mode", "")
        for site in entry.get("sites", ()):
            items.add(f"fault:{site}:{mode}")
    return tuple(sorted(items))


def item_seam(item: str) -> str:
    """Which cross-system seam a failure item lives on.

    Fingerprint items carry their plan group in the second ``|`` field
    of the key (see :class:`~repro.crosstest.fingerprint.Fingerprint`);
    fault items carry the boundary site verbatim (``spark->metastore``
    and friends).
    """
    if item.startswith("fp:"):
        fields = item[len("fp:") :].split("|")
        group = fields[1] if len(fields) > 1 else ""
        return _GROUP_SEAMS.get(group, group or "unknown")
    if item.startswith("fault:"):
        site = item[len("fault:") :]
        site = site.split("/", 1)[0]
        return site or "unknown"
    return "unknown"


def jaccard(left: set[int], right: set[int]) -> float:
    """``|A ∩ B| / |A ∪ B|`` — 1.0 means "always fail together"."""
    if not left and not right:
        return 0.0
    union = left | right
    return len(left & right) / len(union)


def canonical_order(records: list[dict]) -> list[dict]:
    """Records in a content-determined order, so run indices (and with
    them the whole clustering output) cannot depend on how the ledger
    lines happened to be concatenated. Shared with
    :mod:`repro.analytics.windows`, whose window boundaries must be
    equally immune to ledger-line shuffling."""
    from repro.obs.ledger import canonical_record

    return sorted(
        records,
        key=lambda record: (
            record.get("ts", 0.0),
            json.dumps(canonical_record(record), sort_keys=True),
        ),
    )


def cluster_ledger(
    records: list[dict],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[Cluster]:
    """Group the ledger's failure items into co-occurrence clusters.

    Single-linkage agglomeration: items whose run sets overlap with
    Jaccard ≥ ``threshold`` merge transitively. Output is sorted
    largest cluster first (ties by first member), members sorted within
    each cluster.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    ordered = canonical_order(records)
    total = len(ordered)
    if not total:
        return []
    item_runs: dict[str, set[int]] = {}
    for index, record in enumerate(ordered):
        for item in record_items(record):
            item_runs.setdefault(item, set()).add(index)
    items = sorted(item_runs)

    parent = {item: item for item in items}

    def find(item: str) -> str:
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(left: str, right: str) -> None:
        root_left, root_right = find(left), find(right)
        if root_left == root_right:
            return
        # smaller label wins the root, keeping merges order-free
        if root_right < root_left:
            root_left, root_right = root_right, root_left
        parent[root_right] = root_left

    for position, left in enumerate(items):
        for right in items[position + 1 :]:
            if jaccard(item_runs[left], item_runs[right]) >= threshold:
                union(left, right)

    groups: dict[str, list[str]] = {}
    for item in items:
        groups.setdefault(find(item), []).append(item)

    timestamps = [record.get("ts", 0.0) for record in ordered]
    clusters: list[Cluster] = []
    for members in groups.values():
        runs: set[int] = set()
        for member in members:
            runs |= item_runs[member]
        run_times = [timestamps[index] for index in runs]
        clusters.append(
            Cluster(
                members=tuple(sorted(members)),
                runs=tuple(sorted(runs)),
                flake_rate=len(runs) / total,
                first_seen=min(run_times),
                last_seen=max(run_times),
                seams=tuple(
                    sorted({item_seam(member) for member in members})
                ),
            )
        )
    clusters.sort(key=lambda cluster: (-len(cluster.members), cluster.members))
    return clusters
