"""A stdlib-only HTTP status surface for long-running campaigns.

The ROADMAP's always-on campaign service needs somewhere to look while
the scheduler streams batches: :class:`ObsServer` exposes the live
:mod:`repro.metrics` registries and the on-disk ledger over three JSON
endpoints —

* ``GET /metrics``  — ``{system: registry.snapshot()}`` for every
  registry handed to the server (read live on each request, so a
  campaign thread appending trials is visible immediately);
* ``GET /ledger``   — the ledger's records (re-read per request, so a
  concurrent writer's appends show up without restarts);
* ``GET /clusters`` — :func:`repro.obs.cluster.cluster_ledger` over
  the current ledger;
* ``GET /campaign`` — the live campaign checkpoint (batch cursor,
  coverage, fingerprint counts), re-read per request so ``status
  --serve`` is the front-end of a *running* campaign;
* ``GET /analytics`` — :func:`repro.analytics.analyze_ledger` over the
  current ledger: commit windows, cluster drift flags, evolution
  events;
* ``GET /``         — the endpoint index plus schema version.

Ledger reads tolerate a torn trailing line (a concurrent campaign
writer killed mid-append): the intact prefix is served, with the torn
tail surfaced as ``"truncated_tail"`` rather than a 500.

No dependencies beyond ``http.server``; start it in the background
(``start()``/``stop()``) next to a scheduler loop, or foreground via
``repro status --serve``.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.cluster import DEFAULT_THRESHOLD, cluster_ledger
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerError,
    read_ledger_with_tail,
)

__all__ = ["ObsServer", "campaign_snapshot"]


def campaign_snapshot(checkpoint_path: str | None) -> dict:
    """The ``/campaign`` payload: a summary of the checkpoint on disk.

    ``active`` is simply "a readable checkpoint exists" — there is no
    liveness channel to the campaign process, so the panel reports the
    last committed batch cursor plus the checkpoint's mtime and lets
    the reader judge staleness. Shared by :class:`ObsServer` and the
    ``repro status`` campaign panel.
    """
    payload: dict[str, object] = {
        "checkpoint": checkpoint_path,
        "active": False,
    }
    if checkpoint_path is None:
        return payload
    try:
        with open(checkpoint_path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
        mtime = os.path.getmtime(checkpoint_path)
    except FileNotFoundError:
        return payload
    except ValueError as exc:
        payload["error"] = f"unreadable checkpoint ({exc})"
        return payload
    state = snapshot.get("state", {})
    findings = state.get("findings", ())
    payload.update(
        {
            "active": True,
            "mtime": mtime,
            "schema_version": snapshot.get("schema_version"),
            "config": state.get("config", {}),
            "batches": state.get("round_index", 0),
            "candidates": state.get("candidates", 0),
            "trials": state.get("trials_run", 0),
            "coverage_features": len(state.get("coverage", [])),
            "fingerprints": len(findings),
            "novel": sum(
                1
                for finding in findings
                if isinstance(finding, dict) and finding.get("novel")
            ),
            "rediscovered": len(state.get("rediscovered", [])),
            "novel_seen": bool(snapshot.get("novel_seen", False)),
        }
    )
    return payload


class ObsServer:
    """Serve campaign observability over HTTP.

    ``registries`` is any iterable of
    :class:`~repro.metrics.MetricsRegistry` (or objects with a
    compatible ``system``/``snapshot()``, e.g. a
    :class:`~repro.crosstest.CrossTestMetrics` registry); ``port=0``
    binds an ephemeral port, readable from :attr:`address` after
    construction.
    """

    ENDPOINTS = (
        "/",
        "/metrics",
        "/ledger",
        "/clusters",
        "/campaign",
        "/analytics",
    )

    def __init__(
        self,
        ledger_path: str | None = None,
        registries=(),
        host: str = "127.0.0.1",
        port: int = 0,
        threshold: float = DEFAULT_THRESHOLD,
        checkpoint_path: str | None = None,
    ) -> None:
        self.ledger_path = ledger_path
        self.checkpoint_path = checkpoint_path
        self.registries = tuple(registries)
        self.threshold = threshold
        obs = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # noqa: ARG002
                pass  # request logging is the caller's business, not stderr's

            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                try:
                    payload = obs.payload(path)
                except LedgerError as exc:
                    self._reply(500, {"error": str(exc)})
                    return
                if payload is None:
                    self._reply(
                        404,
                        {
                            "error": f"no endpoint {path!r}",
                            "endpoints": list(obs.ENDPOINTS),
                        },
                    )
                    return
                self._reply(200, payload)

            def _reply(self, status: int, payload: dict) -> None:
                body = json.dumps(payload, sort_keys=True).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._thread: threading.Thread | None = None

    # -- payloads ----------------------------------------------------------

    def _records(self) -> tuple[list[dict], tuple[int, str] | None]:
        if self.ledger_path is None:
            return [], None
        # Tolerate a torn tail: a live campaign writer killed mid-append
        # leaves at most one partial final line, and the status surface
        # must keep rendering the intact prefix.
        return read_ledger_with_tail(self.ledger_path)

    def payload(self, path: str) -> dict | None:
        """The JSON body for one endpoint, or ``None`` for a 404."""
        if path == "/":
            records, _ = self._records()
            return {
                "endpoints": list(self.ENDPOINTS),
                "schema_version": LEDGER_SCHEMA_VERSION,
                "ledger": self.ledger_path,
                "checkpoint": self.checkpoint_path,
                "runs": len(records),
            }
        if path == "/metrics":
            return {
                registry.system: registry.snapshot()
                for registry in self.registries
            }
        if path == "/ledger":
            records, truncated = self._records()
            payload = {
                "schema_version": LEDGER_SCHEMA_VERSION,
                "ledger": self.ledger_path,
                "runs": records,
            }
            if truncated is not None:
                payload["truncated_tail"] = {
                    "lineno": truncated[0],
                    "reason": truncated[1],
                }
            return payload
        if path == "/clusters":
            records, _ = self._records()
            return {
                "total_runs": len(records),
                "threshold": self.threshold,
                "clusters": [
                    cluster.to_json()
                    for cluster in cluster_ledger(
                        records, threshold=self.threshold
                    )
                ],
            }
        if path == "/campaign":
            return campaign_snapshot(self.checkpoint_path)
        if path == "/analytics":
            # imported lazily: obs must not hard-depend on analytics
            # (analytics already imports obs for clustering)
            from repro.analytics import analyze_ledger

            records, _ = self._records()
            payload = analyze_ledger(
                records, threshold=self.threshold
            ).to_json()
            payload["total_runs"] = len(records)
            payload["threshold"] = self.threshold
            return payload
        return None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def url(self, path: str = "/") -> str:
        host, port = self.address
        return f"http://{host}:{port}{path}"

    def start(self) -> "ObsServer":
        """Serve from a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-obs-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (``repro status --serve``)."""
        self._server.serve_forever()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
