"""A stdlib-only HTTP status surface for long-running campaigns.

The ROADMAP's always-on campaign service needs somewhere to look while
the scheduler streams batches: :class:`ObsServer` exposes the live
:mod:`repro.metrics` registries and the on-disk ledger over three JSON
endpoints —

* ``GET /metrics``  — ``{system: registry.snapshot()}`` for every
  registry handed to the server (read live on each request, so a
  campaign thread appending trials is visible immediately);
* ``GET /ledger``   — the ledger's records (re-read per request, so a
  concurrent writer's appends show up without restarts);
* ``GET /clusters`` — :func:`repro.obs.cluster.cluster_ledger` over
  the current ledger;
* ``GET /``         — the endpoint index plus schema version.

No dependencies beyond ``http.server``; start it in the background
(``start()``/``stop()``) next to a scheduler loop, or foreground via
``repro status --serve``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.cluster import DEFAULT_THRESHOLD, cluster_ledger
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerError,
    read_ledger,
)

__all__ = ["ObsServer"]


class ObsServer:
    """Serve campaign observability over HTTP.

    ``registries`` is any iterable of
    :class:`~repro.metrics.MetricsRegistry` (or objects with a
    compatible ``system``/``snapshot()``, e.g. a
    :class:`~repro.crosstest.CrossTestMetrics` registry); ``port=0``
    binds an ephemeral port, readable from :attr:`address` after
    construction.
    """

    ENDPOINTS = ("/", "/metrics", "/ledger", "/clusters")

    def __init__(
        self,
        ledger_path: str | None = None,
        registries=(),
        host: str = "127.0.0.1",
        port: int = 0,
        threshold: float = DEFAULT_THRESHOLD,
    ) -> None:
        self.ledger_path = ledger_path
        self.registries = tuple(registries)
        self.threshold = threshold
        obs = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # noqa: ARG002
                pass  # request logging is the caller's business, not stderr's

            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                try:
                    payload = obs.payload(path)
                except LedgerError as exc:
                    self._reply(500, {"error": str(exc)})
                    return
                if payload is None:
                    self._reply(
                        404,
                        {
                            "error": f"no endpoint {path!r}",
                            "endpoints": list(obs.ENDPOINTS),
                        },
                    )
                    return
                self._reply(200, payload)

            def _reply(self, status: int, payload: dict) -> None:
                body = json.dumps(payload, sort_keys=True).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._thread: threading.Thread | None = None

    # -- payloads ----------------------------------------------------------

    def _records(self) -> list[dict]:
        if self.ledger_path is None:
            return []
        return read_ledger(self.ledger_path)

    def payload(self, path: str) -> dict | None:
        """The JSON body for one endpoint, or ``None`` for a 404."""
        if path == "/":
            return {
                "endpoints": list(self.ENDPOINTS),
                "schema_version": LEDGER_SCHEMA_VERSION,
                "ledger": self.ledger_path,
                "runs": len(self._records()),
            }
        if path == "/metrics":
            return {
                registry.system: registry.snapshot()
                for registry in self.registries
            }
        if path == "/ledger":
            records = self._records()
            return {
                "schema_version": LEDGER_SCHEMA_VERSION,
                "ledger": self.ledger_path,
                "runs": records,
            }
        if path == "/clusters":
            records = self._records()
            return {
                "total_runs": len(records),
                "threshold": self.threshold,
                "clusters": [
                    cluster.to_json()
                    for cluster in cluster_ledger(
                        records, threshold=self.threshold
                    )
                ],
            }
        return None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def url(self, path: str = "/") -> str:
        host, port = self.address
        return f"http://{host}:{port}{path}"

    def start(self) -> "ObsServer":
        """Serve from a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-obs-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (``repro status --serve``)."""
        self._server.serve_forever()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
