"""The campaign run ledger: an append-only JSONL store of harness runs.

The paper's cross-system failures are found by *campaigns*, not single
runs — yet until this module every ``crosstest``/``fuzz``/chaos
invocation was one-shot: fingerprints, fault classifications and
metrics evaporated with the process. The ledger gives every run a
durable, structured record so questions that only make sense *across*
runs ("which discrepancies keep failing together?") become answerable
(:mod:`repro.obs.cluster` computes exactly that).

**Determinism contract.** A record has two parts:

* Everything outside ``env`` and ``ts`` — ``kind``, ``run``,
  ``results`` — is a pure function of the run's inputs ``(corpus,
  seed, conf, fault plan)``. At a fixed seed the section is
  byte-identical at every ``--jobs``/pool setting, which is what lets
  two ledgers from different machines diff cleanly (and what the
  determinism tests pin at jobs 1/2/4 on thread and process pools).
* ``env`` and ``ts`` are explicitly *volatile*: wall clock, worker
  count, latency histogram snapshots, git/bench metadata. Consumers
  that compare or cluster records must ignore them;
  :func:`canonical_record` strips both — which is how a campaign
  killed mid-run and resumed hours later still produces
  canonically-identical records to an uninterrupted run.

``ts`` is stamped through an injectable ``clock`` callable (defaulting
to :func:`time.time`) so tests — and any caller that wants
byte-reproducible ledgers — can fix it.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Callable

from repro.errors import ReproError

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "LEDGER_SCHEMA",
    "LedgerError",
    "Ledger",
    "read_ledger",
    "read_ledger_with_tail",
    "check_schema",
    "canonical_record",
    "crosstest_record",
    "fuzz_record",
    "campaign_record",
    "run_env",
]

#: bump when a record field changes meaning or shape; ``repro status``
#: refuses a ledger whose records disagree with the reader's version.
LEDGER_SCHEMA_VERSION = 1

#: The record schema, by top-level key. Documentation *and* contract:
#: the ``status-smoke`` CI step fails when a recorded ledger drifts
#: from this version, and the field map below is what EXPERIMENTS.md's
#: "Reading the campaign ledger" walkthrough refers to.
LEDGER_SCHEMA = {
    "version": LEDGER_SCHEMA_VERSION,
    "record": {
        "schema_version": "int — LEDGER_SCHEMA_VERSION at write time",
        "kind": (
            "str — 'crosstest' (incl. chaos runs), 'fuzz', or "
            "'campaign' (one record per always-on campaign batch)"
        ),
        "ts": (
            "float — unix time from the injectable clock; volatile "
            "(stripped by canonical_record alongside env)"
        ),
        "run": {
            "crosstest": (
                "corpus, conf, plans, formats, fault_plan, fault_seed"
            ),
            "fuzz": "seed, budget, batch, corpus, plans, formats",
            "campaign": (
                "seed, batch, batch_index, corpus, plans, formats"
            ),
        },
        "results": {
            "trials": "int — trials executed",
            "failures": "dict — oracle-log name -> failure count",
            "found_discrepancies": "list[int] — catalog numbers",
            "fingerprints": "list[str] — mechanism fingerprint keys",
            "faults": (
                "only for injected runs: plan, seed, injected_trials, "
                "classifications, mis_handled "
                "[{trial, mode, sites: ['site/operation', ...]}]"
            ),
            "coverage_features": "fuzz only: distinct coverage features",
            "novel": "fuzz only: fingerprint keys not in the baseline",
            "rediscovered": "fuzz only: rediscovered catalog numbers",
            "campaign": (
                "campaign records scope these per batch: fingerprints "
                "witnessed, new_fingerprints/novel first seen, "
                "candidates, plus cumulative coverage_features"
            ),
        },
        "env": (
            "volatile facts, excluded from determinism guarantees: "
            "jobs, pool, wall_s, metrics (registry snapshot incl. "
            "latency histograms), git {commit}, bench {trials/s}"
        ),
    },
}


class LedgerError(ReproError):
    """A ledger could not be read, parsed, or version-matched."""


class Ledger:
    """One append-only JSONL ledger file.

    ``append`` serializes with ``sort_keys`` so a record's bytes depend
    only on its content, never on dict construction order; a crashed
    writer can at worst leave one truncated final line, which
    :func:`read_ledger` reports with its line number.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, record: dict) -> dict:
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return record

    def read(self) -> list[dict]:
        return read_ledger(self.path)


def read_ledger(
    path: str, *, tolerate_truncated_tail: bool = False
) -> list[dict]:
    """Every record in the ledger, file order; a missing file is an
    empty campaign (``[]``), not an error — "no runs recorded" is a
    legitimate state the status surface renders as such.

    ``tolerate_truncated_tail`` drops an unparseable *final* line
    instead of raising — the hard-kill case: a writer killed mid-append
    leaves at most one torn trailing line, and a status surface polling
    a live campaign must render the intact prefix rather than 500. A
    corrupt line anywhere *before* the tail still raises — that is file
    damage, not an append in flight.
    """
    records, truncated = read_ledger_with_tail(path)
    if truncated is not None and not tolerate_truncated_tail:
        lineno, reason = truncated
        raise LedgerError(f"{path}:{lineno}: not a JSON record ({reason})")
    return records


def read_ledger_with_tail(
    path: str,
) -> tuple[list[dict], tuple[int, str] | None]:
    """Like :func:`read_ledger`, but report a torn tail instead of
    deciding about it: returns ``(records, truncated)`` where
    ``truncated`` is ``None`` for a clean ledger or ``(lineno,
    reason)`` for an unparseable final line (which is *not* included in
    ``records``). Callers that tolerate the tail should still surface
    it — detected and tolerated, never silently mis-parsed."""
    try:
        handle = open(path, encoding="utf-8")
    except FileNotFoundError:
        return [], None
    records: list[dict] = []
    bad: tuple[int, str] | None = None
    with handle:
        for lineno, line in enumerate(handle, start=1):
            if bad is not None:
                # the bad line was not the tail after all
                raise LedgerError(
                    f"{path}:{bad[0]}: not a JSON record ({bad[1]})"
                )
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError as exc:
                bad = (lineno, str(exc))
                continue
            if not isinstance(payload, dict):
                raise LedgerError(
                    f"{path}:{lineno}: expected a JSON object, "
                    f"got {type(payload).__name__}"
                )
            records.append(payload)
    return records, bad


def check_schema(records: list[dict], path: str = "ledger") -> None:
    """Refuse records whose schema version drifted from this reader's.

    Raises :class:`LedgerError` naming every drifted version — the
    check behind the CI ``status-smoke`` gate.
    """
    drifted = sorted(
        {
            str(record.get("schema_version"))
            for record in records
            if record.get("schema_version") != LEDGER_SCHEMA_VERSION
        }
    )
    if drifted:
        raise LedgerError(
            f"{path}: schema-version drift: found version(s) "
            f"{', '.join(drifted)}, this reader speaks "
            f"v{LEDGER_SCHEMA_VERSION}"
        )


def canonical_record(record: dict) -> dict:
    """The record minus its volatile sections (``env`` and ``ts``) —
    the part the determinism contract covers and the clustering reads.
    ``ts`` is wall-clock: a campaign killed mid-run and resumed hours
    later stamps later times on the re-run batches, but its canonical
    records must still be byte-identical to an uninterrupted run."""
    return {
        key: value for key, value in record.items() if key not in ("env", "ts")
    }


def _stamp(clock: Callable[[], float] | None) -> float:
    return float((clock or time.time)())


def crosstest_record(
    report,
    metrics=None,
    *,
    corpus: str = "full",
    conf_overrides: dict[str, object] | None = None,
    clock: Callable[[], float] | None = None,
    env: dict | None = None,
) -> dict:
    """One ledger record for a §8 matrix run (chaos runs included).

    ``report`` is a :class:`~repro.crosstest.report.CrossTestReport`;
    ``metrics`` (a :class:`~repro.crosstest.CrossTestMetrics`) only
    feeds the volatile ``env`` section when the caller did not pass an
    explicit ``env``. Everything else lands in the deterministic
    sections — fingerprints via :meth:`CrossTestReport.fingerprints`,
    fault classifications from the attached fault report.
    """
    from repro.crosstest.fingerprint import conf_label

    conf = conf_label(conf_overrides)
    results: dict[str, object] = {
        "trials": len(report.trials),
        "failures": {
            log: len(failures)
            for log, failures in sorted(report.failures_by_log().items())
        },
        "found_discrepancies": sorted(report.found_numbers),
        "fingerprints": sorted(report.fingerprints(conf)),
    }
    fault_plan = None
    fault_seed = None
    if report.faults is not None:
        fault_plan = report.faults.plan.name
        fault_seed = report.faults.seed
        mis_handled = []
        for index in report.faults.mis_handled():
            verdict = report.faults.verdicts[index]
            mis_handled.append(
                {
                    "trial": report.faults.trial_keys.get(
                        index, str(index)
                    ),
                    "mode": verdict.mode,
                    "sites": sorted(
                        {
                            f"{record.site}/{record.operation}"
                            for record in report.faults.injections.get(
                                index, ()
                            )
                        }
                    ),
                }
            )
        results["faults"] = {
            "plan": fault_plan,
            "seed": fault_seed,
            "injected_trials": report.faults.injected_trials,
            "classifications": report.faults.counts(),
            "mis_handled": mis_handled,
        }
    if env is None and metrics is not None:
        env = run_env(metrics=metrics)
    return {
        "schema_version": LEDGER_SCHEMA_VERSION,
        "kind": "crosstest",
        "ts": _stamp(clock),
        "run": {
            "corpus": corpus,
            "conf": conf,
            "plans": sorted({t.plan.name for t in report.trials}),
            "formats": sorted({t.fmt for t in report.trials}),
            "fault_plan": fault_plan,
            "fault_seed": fault_seed,
        },
        "results": results,
        "env": dict(env or {}),
    }


def fuzz_record(
    result,
    metrics=None,
    *,
    clock: Callable[[], float] | None = None,
    env: dict | None = None,
) -> dict:
    """One ledger record for a fuzz campaign.

    ``result`` is a :class:`~repro.fuzz.scheduler.FuzzResult`; its
    :meth:`~repro.fuzz.scheduler.FuzzResult.ledger_results` payload is
    deterministic by the campaign's own guarantee, so the record stays
    byte-reproducible at any ``--jobs``/pool setting.
    """
    config = result.config
    if env is None and metrics is not None:
        env = run_env(metrics=metrics)
    return {
        "schema_version": LEDGER_SCHEMA_VERSION,
        "kind": "fuzz",
        "ts": _stamp(clock),
        "run": {
            "seed": config.seed,
            "budget": config.budget,
            "batch": config.batch,
            "corpus": config.corpus if config.use_corpus else None,
            "plans": sorted(plan.name for plan in config.plans),
            "formats": sorted(config.formats),
        },
        "results": result.ledger_results(),
        "env": dict(env or {}),
    }


def campaign_record(
    run: dict,
    results: dict,
    *,
    clock: Callable[[], float] | None = None,
    env: dict | None = None,
) -> dict:
    """One ledger record per committed campaign batch.

    ``run`` identifies the batch within the campaign (seed, batch size,
    ``batch_index``, plans, formats, corpus); ``results`` carries the
    batch outcome — ``fingerprints`` lists every key *witnessed* this
    batch (so cluster co-occurrence sees the batch's full failure set),
    ``new_fingerprints``/``novel`` the subset first seen here, plus
    cumulative ``coverage_features`` and ``rediscovered``. Both dicts
    are deterministic by the campaign's own guarantee; only ``ts`` and
    ``env`` are volatile.
    """
    return {
        "schema_version": LEDGER_SCHEMA_VERSION,
        "kind": "campaign",
        "ts": _stamp(clock),
        "run": dict(run),
        "results": dict(results),
        "env": dict(env or {}),
    }


def run_env(
    *,
    jobs: int | None = None,
    pool: str | None = None,
    wall_s: float | None = None,
    metrics=None,
) -> dict:
    """The volatile ``env`` section of a record, from what the caller
    measured plus best-effort git/bench metadata. Nothing here feeds
    clustering or determinism checks — see :func:`canonical_record`."""
    env: dict[str, object] = {}
    if jobs is not None:
        env["jobs"] = int(jobs)
    if pool is not None:
        env["pool"] = str(pool)
    if wall_s is not None:
        env["wall_s"] = round(float(wall_s), 6)
    if metrics is not None:
        env["metrics"] = metrics.snapshot()
    git = _git_metadata()
    if git is not None:
        env["git"] = git
    bench = _bench_metadata()
    if bench is not None:
        env["bench"] = bench
    return env


# Both metadata probes are cached per process: a long campaign appends
# one record per batch, and paying a `git rev-parse` fork plus a bench
# file read on every append adds up to real wall time for facts that
# cannot change under a running process. `_clear_metadata_cache()` (for
# tests) resets both; the bench cache is keyed by resolved path so an
# env-var change between appends still re-resolves.
_METADATA_CACHE: dict[object, dict | None] = {}


def _clear_metadata_cache() -> None:
    _METADATA_CACHE.clear()


def _git_metadata() -> dict | None:
    if "git" not in _METADATA_CACHE:
        _METADATA_CACHE["git"] = _probe_git_metadata()
    return _METADATA_CACHE["git"]


def _probe_git_metadata() -> dict | None:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        if proc.returncode == 0 and proc.stdout.strip():
            return {"commit": proc.stdout.strip()}
    except Exception:  # noqa: BLE001 - metadata is strictly best-effort
        pass
    return None


def _bench_json_path() -> str:
    """Where the bench snapshot lives: ``REPRO_BENCH_JSON`` when set,
    else ``BENCH_crosstest.json`` at the repo root — *not* the cwd, so
    a campaign launched from any working directory still records its
    host's bench metadata."""
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return override
    repo_root = os.path.dirname(  # src/repro/obs/ledger.py -> repo root
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    )
    return os.path.join(repo_root, "BENCH_crosstest.json")


def _bench_metadata() -> dict | None:
    path = _bench_json_path()
    key = ("bench", path)
    if key not in _METADATA_CACHE:
        _METADATA_CACHE[key] = _probe_bench_metadata(path)
    return _METADATA_CACHE[key]


def _probe_bench_metadata(path: str) -> dict | None:
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        rate = payload.get("jobs1", {}).get("trials_per_s")
        if rate is not None:
            return {"jobs1_trials_per_s": rate}
    except Exception:  # noqa: BLE001 - metadata is strictly best-effort
        pass
    return None
