"""Canonical ledger comparison — the determinism oracle for campaigns.

Two ledgers written by the "same" campaign (one uninterrupted, one
killed and resumed; or two runs at different ``--jobs``/pool settings)
are never byte-identical: timestamps and the volatile ``env`` section
differ by construction. What the determinism contract pins is the
*canonical* form (:func:`repro.obs.ledger.canonical_record`), so the
smoke jobs compare that::

    python -m repro.obs.ledgerdiff a.jsonl b.jsonl

Exit 0 when every record matches canonically, 1 on any divergence
(count mismatch or first differing record, reported to stderr), 2 on
unreadable input. A torn trailing line is tolerated on both sides —
the comparison covers the intact prefix — but is reported, since a
smoke run that tore its tail should be visible even when it passes.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.ledger import (
    LedgerError,
    canonical_record,
    read_ledger_with_tail,
)

__all__ = ["compare_ledgers", "main"]


def compare_ledgers(
    left_path: str, right_path: str
) -> tuple[list[str], list[str]]:
    """Compare two ledgers canonically.

    Returns ``(differences, notes)``: ``differences`` is empty iff the
    ledgers match record-for-record after :func:`canonical_record`;
    ``notes`` carries non-fatal observations (torn tails).
    Raises :class:`LedgerError` when either file is unreadable.
    """
    notes: list[str] = []
    sides = []
    for path in (left_path, right_path):
        records, truncated = read_ledger_with_tail(path)
        if truncated is not None:
            notes.append(
                f"{path}:{truncated[0]}: torn trailing line tolerated"
            )
        sides.append([canonical_record(record) for record in records])
    left, right = sides

    differences: list[str] = []
    if len(left) != len(right):
        differences.append(
            f"record count differs: {left_path} has {len(left)}, "
            f"{right_path} has {len(right)}"
        )
    for index, (a, b) in enumerate(zip(left, right)):
        if a != b:
            differences.append(
                f"record {index} differs canonically:\n"
                f"  {left_path}: {json.dumps(a, sort_keys=True)}\n"
                f"  {right_path}: {json.dumps(b, sort_keys=True)}"
            )
            break  # the first divergence is the actionable one
    return differences, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.ledgerdiff",
        description="Compare two ledgers after stripping volatile "
        "sections (env, ts); exit 1 on canonical divergence.",
    )
    parser.add_argument("left", help="first ledger JSONL path")
    parser.add_argument("right", help="second ledger JSONL path")
    args = parser.parse_args(argv)

    try:
        differences, notes = compare_ledgers(args.left, args.right)
    except LedgerError as exc:
        print(f"ledgerdiff: {exc}", file=sys.stderr)
        return 2
    for note in notes:
        print(f"ledgerdiff: note: {note}", file=sys.stderr)
    if differences:
        for line in differences:
            print(f"ledgerdiff: {line}", file=sys.stderr)
        return 1
    print(f"ledgerdiff: canonical match ({args.left} == {args.right})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
