"""Campaign observability: run ledger, co-occurrence analytics, status.

The campaign-side complement of :mod:`repro.metrics` (one run's
counters) and :mod:`repro.tracing` (one trial's spans): this package
remembers what *past* runs found. :mod:`repro.obs.ledger` appends one
structured record per ``crosstest``/``fuzz``/chaos run,
:mod:`repro.obs.cluster` groups the recorded discrepancy fingerprints
and mis-handled fault sites into co-occurrence clusters across runs,
and :mod:`repro.obs.server` plus ``repro status`` render both — live.
"""

from repro.obs.cluster import (
    DEFAULT_THRESHOLD,
    Cluster,
    cluster_ledger,
    item_seam,
    jaccard,
    record_items,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    LEDGER_SCHEMA_VERSION,
    Ledger,
    LedgerError,
    campaign_record,
    canonical_record,
    check_schema,
    crosstest_record,
    fuzz_record,
    read_ledger,
    read_ledger_with_tail,
    run_env,
)
from repro.obs.server import ObsServer, campaign_snapshot

__all__ = [
    "Cluster",
    "DEFAULT_THRESHOLD",
    "LEDGER_SCHEMA",
    "LEDGER_SCHEMA_VERSION",
    "Ledger",
    "LedgerError",
    "ObsServer",
    "campaign_record",
    "campaign_snapshot",
    "canonical_record",
    "check_schema",
    "cluster_ledger",
    "crosstest_record",
    "fuzz_record",
    "item_seam",
    "jaccard",
    "read_ledger",
    "read_ledger_with_tail",
    "record_items",
    "run_env",
]
