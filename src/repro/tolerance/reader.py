"""CSI fault tolerance through interface redundancy (§5.2 / §10).

The paper observes that cross-system interactions are single points of
failure despite replicated data, and proposes "leveraging the diversity
of existing interfaces ... to build interaction redundancy". This module
is that mechanism: a :class:`RedundantReader` fans a read across several
independent read paths (Spark DataFrame, SparkSQL, HiveQL) and returns
the first one that succeeds, recording which paths failed and why.

The trade-off is real and preserved: a fallback path may return the
data under *its* semantics (e.g. the HiveQL path reads an Avro-promoted
INT where the DataFrame path raised on BYTE), so the result carries the
path that produced it and the caller decides whether availability wins.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.common.result import QueryResult
from repro.hivelite.engine import HiveServer
from repro.sparklite.session import SparkSession

__all__ = ["PathFailure", "ToleratedRead", "RedundantReader"]

ReadFn = Callable[[str], QueryResult]


@dataclass(frozen=True)
class PathFailure:
    path: str
    error_type: str
    message: str
    #: which injected fault kind felled this path ("" when the failure
    #: was organic) — ``repr(exc)`` alone can't distinguish an injected
    #: timeout from a real one, and chaos reports need to
    fault_kind: str = ""


@dataclass
class ToleratedRead:
    """Outcome of a redundant read."""

    table: str
    result: QueryResult | None = None
    path_used: str | None = None
    failures: tuple[PathFailure, ...] = ()

    @property
    def succeeded(self) -> bool:
        return self.result is not None

    @property
    def tolerated(self) -> bool:
        """True when the primary path failed but another succeeded."""
        return self.succeeded and bool(self.failures)

    def describe(self) -> str:
        if not self.succeeded:
            return (
                f"{self.table}: all {len(self.failures)} read paths failed"
            )
        suffix = (
            f" (after {len(self.failures)} failed paths)"
            if self.failures
            else ""
        )
        return f"{self.table}: read via {self.path_used}{suffix}"


@dataclass
class RedundantReader:
    """Ordered read paths; first success wins."""

    paths: list[tuple[str, ReadFn]] = field(default_factory=list)

    def add_path(self, name: str, read_fn: ReadFn) -> "RedundantReader":
        self.paths.append((name, read_fn))
        return self

    @classmethod
    def for_pair(
        cls, spark: SparkSession, hive: HiveServer
    ) -> "RedundantReader":
        """The standard path stack for a Spark+Hive co-deployment."""
        reader = cls()
        reader.add_path(
            "spark-dataframe",
            lambda table: spark.read_table(table, interface="dataframe"),
        )
        reader.add_path(
            "spark-sql", lambda table: spark.sql(f"SELECT * FROM {table}")
        )
        reader.add_path(
            "hiveql", lambda table: hive.execute(f"SELECT * FROM {table}")
        )
        return reader

    def read(self, table: str) -> ToleratedRead:
        failures: list[PathFailure] = []
        for name, read_fn in self.paths:
            try:
                result = read_fn(table)
            except Exception as exc:  # noqa: BLE001 - any failure falls over
                failures.append(
                    PathFailure(
                        name,
                        type(exc).__name__,
                        str(exc),
                        fault_kind=getattr(exc, "fault_kind", ""),
                    )
                )
                continue
            return ToleratedRead(
                table=table,
                result=result,
                path_used=name,
                failures=tuple(failures),
            )
        return ToleratedRead(table=table, failures=tuple(failures))
