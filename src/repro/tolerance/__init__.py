"""Interaction redundancy: tolerate CSI read failures via path diversity."""

from repro.tolerance.reader import PathFailure, RedundantReader, ToleratedRead

__all__ = ["PathFailure", "RedundantReader", "ToleratedRead"]
