"""The Hive metastore: the catalog both engines share.

Spark and Hive do not talk to each other directly in the paper's §8
setup; they interact *through* this catalog and the warehouse files.
That indirection — two independent systems, one shared mutable store —
is the defining shape of a data-plane cross-system interaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.schema import Schema
from repro.errors import MetastoreError, TableAlreadyExistsError, TableNotFoundError

__all__ = ["Table", "HiveMetastore", "DEFAULT_DATABASE"]

DEFAULT_DATABASE = "default"


@dataclass(frozen=True)
class Table:
    """A registered table. Identifiers are stored lower-cased."""

    database: str
    name: str
    schema: Schema
    storage_format: str
    location: str
    properties: tuple[tuple[str, str], ...] = ()
    owner: str = "hive"
    created_ms: int = 0
    #: partition columns (lower-cased, like the data schema); empty for
    #: unpartitioned tables. Partition *values* live in directory names
    #: — strings on disk, whatever each engine decides in memory.
    partition_schema: Schema = Schema(())

    @property
    def is_partitioned(self) -> bool:
        return len(self.partition_schema) > 0

    @property
    def qualified_name(self) -> str:
        return f"{self.database}.{self.name}"

    def property(self, key: str, default: str | None = None) -> str | None:
        for name, value in self.properties:
            if name == key:
                return value
        return default

    def with_properties(self, updates: dict[str, str]) -> "Table":
        merged = dict(self.properties)
        merged.update(updates)
        return replace(self, properties=tuple(sorted(merged.items())))


@dataclass
class HiveMetastore:
    """Case-insensitive catalog of databases and tables."""

    warehouse_root: str = "/warehouse"
    _databases: set[str] = field(default_factory=lambda: {DEFAULT_DATABASE})
    _tables: dict[tuple[str, str], Table] = field(default_factory=dict)
    clock_ms: int = 0

    # -- databases ---------------------------------------------------------

    def create_database(self, name: str) -> None:
        self._databases.add(name.lower())

    def database_exists(self, name: str) -> bool:
        return name.lower() in self._databases

    def list_databases(self) -> list[str]:
        return sorted(self._databases)

    # -- tables --------------------------------------------------------------

    def _key(self, database: str, name: str) -> tuple[str, str]:
        return database.lower(), name.lower()

    def table_location(self, database: str, name: str) -> str:
        return f"{self.warehouse_root}/{database.lower()}.db/{name.lower()}"

    def create_table(
        self,
        name: str,
        schema: Schema,
        storage_format: str,
        *,
        database: str = DEFAULT_DATABASE,
        properties: dict[str, str] | None = None,
        owner: str = "hive",
        if_not_exists: bool = False,
        partition_schema: Schema = Schema(()),
    ) -> Table:
        """Register a table. The schema is stored exactly as given.

        Callers are expected to pass a schema already normalized through
        :func:`repro.hivelite.types.metastore_schema_for`; the metastore
        itself only enforces lower-cased identifiers.
        """
        if not self.database_exists(database):
            raise MetastoreError(f"database {database!r} does not exist")
        key = self._key(database, name)
        if key in self._tables:
            if if_not_exists:
                return self._tables[key]
            raise TableAlreadyExistsError(f"table {database}.{name} exists")
        for candidate in (schema, partition_schema):
            if any(col != col.lower() for col in candidate.names()):
                raise MetastoreError(
                    "metastore schemas must use lower-cased column names; "
                    f"got {candidate.names()}"
                )
        overlap = set(schema.names()) & set(partition_schema.names())
        if overlap:
            raise MetastoreError(
                f"partition columns duplicate data columns: {sorted(overlap)}"
            )
        if len(partition_schema) > 1:
            raise MetastoreError(
                "only single-column partitioning is supported"
            )
        table = Table(
            database=key[0],
            name=key[1],
            schema=schema,
            storage_format=storage_format.lower(),
            location=self.table_location(database, name),
            properties=tuple(sorted((properties or {}).items())),
            owner=owner,
            created_ms=self.clock_ms,
            partition_schema=partition_schema,
        )
        self._tables[key] = table
        return table

    def get_table(self, name: str, database: str = DEFAULT_DATABASE) -> Table:
        try:
            return self._tables[self._key(database, name)]
        except KeyError:
            raise TableNotFoundError(f"table {database}.{name} not found") from None

    def table_exists(self, name: str, database: str = DEFAULT_DATABASE) -> bool:
        return self._key(database, name) in self._tables

    def drop_table(
        self, name: str, database: str = DEFAULT_DATABASE, if_exists: bool = False
    ) -> bool:
        key = self._key(database, name)
        if key not in self._tables:
            if if_exists:
                return False
            raise TableNotFoundError(f"table {database}.{name} not found")
        del self._tables[key]
        return True

    def alter_table_properties(
        self, name: str, updates: dict[str, str], database: str = DEFAULT_DATABASE
    ) -> Table:
        table = self.get_table(name, database)
        updated = table.with_properties(updates)
        self._tables[self._key(database, name)] = updated
        return updated

    def list_tables(self, database: str = DEFAULT_DATABASE) -> list[str]:
        db = database.lower()
        return sorted(
            name for (d, name) in self._tables if d == db
        )
