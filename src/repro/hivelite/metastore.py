"""The Hive metastore: the catalog both engines share.

Spark and Hive do not talk to each other directly in the paper's §8
setup; they interact *through* this catalog and the warehouse files.
That indirection — two independent systems, one shared mutable store —
is the defining shape of a data-plane cross-system interaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.schema import Schema
from repro.errors import MetastoreError, TableAlreadyExistsError, TableNotFoundError

__all__ = ["Table", "HiveMetastore", "DEFAULT_DATABASE"]

DEFAULT_DATABASE = "default"


@dataclass(frozen=True)
class Table:
    """A registered table. Identifiers are stored lower-cased."""

    database: str
    name: str
    schema: Schema
    storage_format: str
    location: str
    properties: tuple[tuple[str, str], ...] = ()
    owner: str = "hive"
    created_ms: int = 0
    #: partition columns (lower-cased, like the data schema); empty for
    #: unpartitioned tables. Partition *values* live in directory names
    #: — strings on disk, whatever each engine decides in memory.
    partition_schema: Schema = Schema(())

    @property
    def is_partitioned(self) -> bool:
        return len(self.partition_schema) > 0

    @property
    def qualified_name(self) -> str:
        return f"{self.database}.{self.name}"

    def property(self, key: str, default: str | None = None) -> str | None:
        for name, value in self.properties:
            if name == key:
                return value
        return default

    def with_properties(self, updates: dict[str, str]) -> "Table":
        merged = dict(self.properties)
        merged.update(updates)
        return replace(self, properties=tuple(sorted(merged.items())))

    def __hash__(self) -> int:
        # computed lazily and cached: tables are hashed on every plan
        # replay (state interning) and the recursive Schema hash is the
        # expensive part. Same fields as the generated __eq__.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(
                (
                    self.database,
                    self.name,
                    self.schema,
                    self.storage_format,
                    self.location,
                    self.properties,
                    self.owner,
                    self.created_ms,
                    self.partition_schema,
                )
            )
            object.__setattr__(self, "_hash", cached)
        return cached


@dataclass
class HiveMetastore:
    """Case-insensitive catalog of databases and tables.

    Every DDL mutation (CREATE/DROP/ALTER, database creation) bumps
    ``catalog_version``, a monotonically increasing counter. Plan caches
    key their validity on it: a cached plan compiled at version *v* can
    trust its resolved tables unchanged while the version still reads
    *v*, and must re-validate its dependencies (via :meth:`table_state`)
    once the version has moved — so a cached plan can never observe a
    stale table.
    """

    warehouse_root: str = "/warehouse"
    _databases: set[str] = field(default_factory=lambda: {DEFAULT_DATABASE})
    _tables: dict[tuple[str, str], Table] = field(default_factory=dict)
    clock_ms: int = 0
    catalog_version: int = 0
    #: Table-value interning for :meth:`table_state`: every distinct
    #: :class:`Table` value ever registered gets a unique small token,
    #: computed once at DDL time. ``_state_tokens`` maps each live table
    #: key to its token.
    _interned: dict[Table, int] = field(default_factory=dict)
    _state_tokens: dict[tuple[str, str], int] = field(default_factory=dict)
    _next_token: int = 0

    def _bump(self) -> None:
        self.catalog_version += 1

    def _intern(self, key: tuple[str, str], table: Table) -> None:
        token = self._interned.get(table)
        if token is None:
            if len(self._interned) >= 4096:
                # unbounded distinct table shapes: drop the memo but keep
                # the counter monotonic so stale tokens can never collide
                self._interned.clear()
            token = self._next_token
            self._next_token += 1
            self._interned[table] = token
        self._state_tokens[key] = token

    # -- databases ---------------------------------------------------------

    def create_database(self, name: str) -> None:
        if name.lower() not in self._databases:
            self._databases.add(name.lower())
            self._bump()

    def database_exists(self, name: str) -> bool:
        return name.lower() in self._databases

    def list_databases(self) -> list[str]:
        return sorted(self._databases)

    # -- tables --------------------------------------------------------------

    def _key(self, database: str, name: str) -> tuple[str, str]:
        return database.lower(), name.lower()

    def table_location(self, database: str, name: str) -> str:
        return f"{self.warehouse_root}/{database.lower()}.db/{name.lower()}"

    def create_table(
        self,
        name: str,
        schema: Schema,
        storage_format: str,
        *,
        database: str = DEFAULT_DATABASE,
        properties: dict[str, str] | None = None,
        owner: str = "hive",
        if_not_exists: bool = False,
        partition_schema: Schema = Schema(()),
    ) -> Table:
        """Register a table. The schema is stored exactly as given.

        Callers are expected to pass a schema already normalized through
        :func:`repro.hivelite.types.metastore_schema_for`; the metastore
        itself only enforces lower-cased identifiers.
        """
        if not self.database_exists(database):
            raise MetastoreError(f"database {database!r} does not exist")
        key = self._key(database, name)
        if key in self._tables:
            if if_not_exists:
                return self._tables[key]
            raise TableAlreadyExistsError(f"table {database}.{name} exists")
        for candidate in (schema, partition_schema):
            if any(col != col.lower() for col in candidate.names()):
                raise MetastoreError(
                    "metastore schemas must use lower-cased column names; "
                    f"got {candidate.names()}"
                )
        overlap = set(schema.names()) & set(partition_schema.names())
        if overlap:
            raise MetastoreError(
                f"partition columns duplicate data columns: {sorted(overlap)}"
            )
        if len(partition_schema) > 1:
            raise MetastoreError(
                "only single-column partitioning is supported"
            )
        table = Table(
            database=key[0],
            name=key[1],
            schema=schema,
            storage_format=storage_format.lower(),
            location=self.table_location(database, name),
            properties=tuple(sorted((properties or {}).items())),
            owner=owner,
            created_ms=self.clock_ms,
            partition_schema=partition_schema,
        )
        self._tables[key] = table
        self._intern(key, table)
        self._bump()
        return table

    def register_table(
        self, table: Table, *, if_not_exists: bool = False
    ) -> Table:
        """Re-register a previously validated :class:`Table` value.

        The replay fast path for cached CREATE plans: the expensive,
        deterministic work — schema validation, property sorting, the
        `Table` construction itself — happened when the plan was first
        compiled and cannot change, so replay is just the existence
        check, the insert, and the version bump.
        """
        key = (table.database, table.name)
        if key in self._tables:
            if if_not_exists:
                return self._tables[key]
            raise TableAlreadyExistsError(
                f"table {table.database}.{table.name} exists"
            )
        if not self.database_exists(table.database):
            raise MetastoreError(f"database {table.database!r} does not exist")
        self._tables[key] = table
        self._intern(key, table)
        self._bump()
        return table

    def table_state(
        self, name: str, database: str = DEFAULT_DATABASE
    ) -> int | None:
        """The current catalog state token for a table (``None`` if absent).

        This is the dependency-fingerprint primitive of the plan cache:
        :class:`Table` is a frozen dataclass, and every distinct table
        *value* is interned to a unique token at DDL time — so two
        ``table_state`` results are equal exactly when nothing a cached
        plan resolved against has changed, and a DROP + CREATE that
        rebuilds an identical table yields the same token. Tokens are
        cheap to hash, which keeps plan-cache lookups off the recursive
        ``Table``/``Schema`` hash path.
        """
        return self._state_tokens.get(self._key(database, name))

    def get_table(self, name: str, database: str = DEFAULT_DATABASE) -> Table:
        try:
            return self._tables[self._key(database, name)]
        except KeyError:
            raise TableNotFoundError(f"table {database}.{name} not found") from None

    def table_exists(self, name: str, database: str = DEFAULT_DATABASE) -> bool:
        return self._key(database, name) in self._tables

    def drop_table(
        self, name: str, database: str = DEFAULT_DATABASE, if_exists: bool = False
    ) -> bool:
        key = self._key(database, name)
        if key not in self._tables:
            if if_exists:
                return False
            raise TableNotFoundError(f"table {database}.{name} not found")
        del self._tables[key]
        del self._state_tokens[key]
        self._bump()
        return True

    def alter_table_properties(
        self, name: str, updates: dict[str, str], database: str = DEFAULT_DATABASE
    ) -> Table:
        table = self.get_table(name, database)
        updated = table.with_properties(updates)
        key = self._key(database, name)
        self._tables[key] = updated
        self._intern(key, updated)
        self._bump()
        return updated

    def list_tables(self, database: str = DEFAULT_DATABASE) -> list[str]:
        db = database.lower()
        return sorted(
            name for (d, name) in self._tables if d == db
        )
