"""Hive's coercion rules: lenient on write, opinionated on read.

Hive's SerDe stack historically converts rather than rejects: malformed
or out-of-range values become NULL on insert. Its *read* path, however,
has strictness of its own that Spark's does not, and the asymmetry is
the mechanism behind two §8 discrepancies:

* decimals are validated against the declared scale when read, so a
  value another engine serialized unquantized fails to read back
  (SPARK-39158, discrepancy #2);
* non-finite doubles have no representation in Hive's result path:
  NaN degrades to NULL while ±Infinity raises (HIVE-26528,
  discrepancies #6 and #7 — same root cause, different behaviour).
"""

from __future__ import annotations

import datetime
import decimal
import functools
import math
from collections.abc import Callable

from repro.common.types import (
    ArrayType,
    BinaryType,
    BooleanType,
    CharType,
    DataType,
    DateType,
    DecimalType,
    DoubleType,
    FloatType,
    MapType,
    StringType,
    StructType,
    TimestampNTZType,
    TimestampType,
    VarcharType,
    is_integral,
)
from repro.errors import QueryError

__all__ = [
    "hive_read_cast",
    "hive_read_kernel",
    "hive_write_cast",
    "hive_write_kernel",
]

_BOOL_TOKENS = {"true": True, "false": False}


def hive_write_cast(value: object, target: DataType) -> object:
    """Coerce an inserted value to the column type; NULL on failure."""
    return hive_write_kernel(target)(value)


def hive_write_cast_reference(value: object, target: DataType) -> object:
    """Uncompiled write coercion; the oracle for the compiled kernels."""
    if value is None:
        return None
    try:
        return _write_cast(value, target)
    except (ValueError, TypeError, ArithmeticError, decimal.InvalidOperation):
        return None


def _write_cast(value: object, target: DataType) -> object:
    if is_integral(target):
        number = _to_int(value)
        if number is None or not target.accepts(number):
            return None
        return number
    if isinstance(target, (FloatType, DoubleType)):
        if isinstance(value, bool):
            return None
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, decimal.Decimal):
            return float(value)
        if isinstance(value, str):
            return _parse_float_text(value)
        return None
    if isinstance(target, DecimalType):
        number = _to_decimal(value)
        if number is None:
            return None
        quantized = number.quantize(
            decimal.Decimal(1).scaleb(-target.scale),
            rounding=decimal.ROUND_HALF_UP,
        )
        if not target.accepts(quantized):
            return None
        return quantized
    if isinstance(target, CharType):
        text = _to_text(value)
        if text is None or len(text) > target.length:
            return None
        return target.pad(text)
    if isinstance(target, VarcharType):
        text = _to_text(value)
        if text is None or len(text) > target.length:
            return None
        return text
    if isinstance(target, StringType):
        return _to_text(value)
    if isinstance(target, BooleanType):
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            return _BOOL_TOKENS.get(value.strip().lower())
        return None
    if isinstance(target, DateType):
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            try:
                return datetime.date.fromisoformat(value.strip())
            except ValueError:
                return None
        return None
    if isinstance(target, (TimestampType, TimestampNTZType)):
        if isinstance(value, datetime.datetime):
            return value
        if isinstance(value, str):
            try:
                return datetime.datetime.fromisoformat(value.strip())
            except ValueError:
                return None
        return None
    if isinstance(target, BinaryType):
        if isinstance(value, bytes):
            return value
        if isinstance(value, str):
            return value.encode("utf-8")
        return None
    if isinstance(target, ArrayType):
        if not isinstance(value, (list, tuple)):
            return None
        return [
            hive_write_cast_reference(v, target.element_type) for v in value
        ]
    if isinstance(target, MapType):
        if not isinstance(value, dict):
            return None
        out = {}
        for k, v in value.items():
            key = hive_write_cast_reference(k, target.key_type)
            if key is None:
                return None
            out[key] = hive_write_cast_reference(v, target.value_type)
        return out
    if isinstance(target, StructType):
        if isinstance(value, dict):
            items = [value.get(f.name) for f in target.fields]
        elif isinstance(value, (list, tuple)):
            if len(value) != len(target.fields):
                return None
            items = list(value)
        else:
            return None
        return [
            hive_write_cast_reference(v, f.data_type)
            for v, f in zip(items, target.fields)
        ]
    return value


def hive_read_cast(value: object, declared: DataType) -> object:
    """Reconcile a physical value against the declared column type.

    Raises :class:`QueryError` for the cases Hive's readers reject.
    """
    return hive_read_kernel(declared)(value)


def hive_read_cast_reference(value: object, declared: DataType) -> object:
    """Uncompiled read reconciliation; the oracle for the kernels."""
    if value is None:
        return None
    if is_integral(declared):
        if isinstance(value, bool) or not isinstance(value, int):
            raise QueryError(
                f"cannot read {type(value).__name__} as {declared.simple_string()}"
            )
        # lenient demotion: out-of-range becomes NULL, like Hive's
        # LazyInteger parsing.
        return value if declared.accepts(value) else None
    if isinstance(declared, (FloatType, DoubleType)):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise QueryError(f"cannot read value as {declared.simple_string()}")
        number = float(value)
        if math.isnan(number):
            # Hive's result path has no NaN: degrade to NULL (HIVE-26528).
            return None
        if math.isinf(number):
            # ...but Infinity trips an overflow error instead — same root
            # cause, different behaviour (§8.2 discrepancy #7).
            raise QueryError(
                f"value out of range for {declared.simple_string()}: {number}"
            )
        return number
    if isinstance(declared, DecimalType):
        if not isinstance(value, decimal.Decimal):
            raise QueryError("physical value is not a decimal")
        exponent = value.as_tuple().exponent
        scale = max(0, -exponent) if isinstance(exponent, int) else 0
        if scale != declared.scale:
            # strict scale validation — the SPARK-39158 mechanism.
            raise QueryError(
                f"decimal scale {scale} does not match declared "
                f"{declared.simple_string()}"
            )
        if not declared.accepts(value):
            return None
        return value
    if isinstance(declared, CharType):
        if not isinstance(value, str):
            raise QueryError("physical value is not a string")
        return declared.pad(value[: target_len(declared)])
    if isinstance(declared, VarcharType):
        if not isinstance(value, str):
            raise QueryError("physical value is not a string")
        return value[: target_len(declared)]
    if isinstance(declared, ArrayType):
        if not isinstance(value, (list, tuple)):
            raise QueryError("physical value is not an array")
        return [
            hive_read_cast_reference(v, declared.element_type) for v in value
        ]
    if isinstance(declared, MapType):
        if not isinstance(value, dict):
            raise QueryError("physical value is not a map")
        return {
            hive_read_cast_reference(
                k, declared.key_type
            ): hive_read_cast_reference(v, declared.value_type)
            for k, v in value.items()
        }
    if isinstance(declared, StructType):
        if not isinstance(value, (list, tuple)):
            raise QueryError("physical value is not a struct")
        return [
            hive_read_cast_reference(v, f.data_type)
            for v, f in zip(value, declared.fields)
        ]
    return value


def target_len(dtype: CharType | VarcharType) -> int:
    return dtype.length


def _to_int(value: object) -> int | None:
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            return None
        return int(value)
    if isinstance(value, decimal.Decimal):
        return int(value)
    if isinstance(value, str):
        return int(value.strip())
    return None


def _to_decimal(value: object) -> decimal.Decimal | None:
    if isinstance(value, bool):
        return None
    if isinstance(value, decimal.Decimal):
        return value
    if isinstance(value, int):
        return decimal.Decimal(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            return None
        return decimal.Decimal(str(value))
    if isinstance(value, str):
        return decimal.Decimal(value.strip())
    return None


def _to_text(value: object) -> str | None:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float, decimal.Decimal)):
        return str(value)
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.isoformat()
    return None


def _parse_float_text(text: str) -> float | None:
    lowered = text.strip().lower()
    # Hive's lazy parser does not recognize NaN/Infinity spellings.
    if lowered in ("nan", "inf", "infinity", "-inf", "-infinity", "+infinity"):
        return None
    return float(text)


# ---------------------------------------------------------------------------
# Compiled cast kernels
# ---------------------------------------------------------------------------
#
# Same scheme as sparklite/casts.py: the isinstance ladder runs once per
# distinct type at kernel-compile time, and the hot path applies a plain
# closure per value. The ``*_reference`` functions above keep the
# original per-value dispatch as the oracle for the kernel property
# tests.

CastKernel = Callable[[object], object]

_KERNEL_CACHE_SIZE = 1024


@functools.lru_cache(maxsize=_KERNEL_CACHE_SIZE)
def hive_write_kernel(target: DataType) -> CastKernel:
    """Compile ``hive_write_cast`` for one column type into a closure."""
    inner = _compile_write(target)

    def kernel(value: object) -> object:
        if value is None:
            return None
        try:
            return inner(value)
        except (
            ValueError,
            TypeError,
            ArithmeticError,
            decimal.InvalidOperation,
        ):
            return None

    return kernel


def _compile_write(target: DataType) -> CastKernel:
    if is_integral(target):

        def to_integral(value: object) -> object:
            number = _to_int(value)
            if number is None or not target.accepts(number):
                return None
            return number

        return to_integral
    if isinstance(target, (FloatType, DoubleType)):

        def to_float(value: object) -> object:
            if isinstance(value, bool):
                return None
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, decimal.Decimal):
                return float(value)
            if isinstance(value, str):
                return _parse_float_text(value)
            return None

        return to_float
    if isinstance(target, DecimalType):
        quantum = decimal.Decimal(1).scaleb(-target.scale)

        def to_decimal(value: object) -> object:
            number = _to_decimal(value)
            if number is None:
                return None
            quantized = number.quantize(
                quantum, rounding=decimal.ROUND_HALF_UP
            )
            if not target.accepts(quantized):
                return None
            return quantized

        return to_decimal
    if isinstance(target, CharType):
        length = target.length

        def to_char(value: object) -> object:
            text = _to_text(value)
            if text is None or len(text) > length:
                return None
            return target.pad(text)

        return to_char
    if isinstance(target, VarcharType):
        length = target.length

        def to_varchar(value: object) -> object:
            text = _to_text(value)
            if text is None or len(text) > length:
                return None
            return text

        return to_varchar
    if isinstance(target, StringType):
        return _to_text
    if isinstance(target, BooleanType):

        def to_boolean(value: object) -> object:
            if isinstance(value, bool):
                return value
            if isinstance(value, str):
                return _BOOL_TOKENS.get(value.strip().lower())
            return None

        return to_boolean
    if isinstance(target, DateType):

        def to_date(value: object) -> object:
            if isinstance(value, datetime.datetime):
                return value.date()
            if isinstance(value, datetime.date):
                return value
            if isinstance(value, str):
                try:
                    return datetime.date.fromisoformat(value.strip())
                except ValueError:
                    return None
            return None

        return to_date
    if isinstance(target, (TimestampType, TimestampNTZType)):

        def to_timestamp(value: object) -> object:
            if isinstance(value, datetime.datetime):
                return value
            if isinstance(value, str):
                try:
                    return datetime.datetime.fromisoformat(value.strip())
                except ValueError:
                    return None
            return None

        return to_timestamp
    if isinstance(target, BinaryType):

        def to_binary(value: object) -> object:
            if isinstance(value, bytes):
                return value
            if isinstance(value, str):
                return value.encode("utf-8")
            return None

        return to_binary
    if isinstance(target, ArrayType):
        element = hive_write_kernel(target.element_type)

        def to_array(value: object) -> object:
            if not isinstance(value, (list, tuple)):
                return None
            return [element(v) for v in value]

        return to_array
    if isinstance(target, MapType):
        key_kernel = hive_write_kernel(target.key_type)
        value_kernel = hive_write_kernel(target.value_type)

        def to_map(value: object) -> object:
            if not isinstance(value, dict):
                return None
            out = {}
            for k, v in value.items():
                key = key_kernel(k)
                if key is None:
                    return None
                out[key] = value_kernel(v)
            return out

        return to_map
    if isinstance(target, StructType):
        fields = target.fields
        names = tuple(f.name for f in fields)
        members = tuple(hive_write_kernel(f.data_type) for f in fields)

        def to_struct(value: object) -> object:
            if isinstance(value, dict):
                items = [value.get(name) for name in names]
            elif isinstance(value, (list, tuple)):
                if len(value) != len(fields):
                    return None
                items = list(value)
            else:
                return None
            return [member(v) for v, member in zip(items, members)]

        return to_struct
    return lambda value: value


@functools.lru_cache(maxsize=_KERNEL_CACHE_SIZE)
def hive_read_kernel(declared: DataType) -> CastKernel:
    """Compile ``hive_read_cast`` for one declared type into a closure."""
    inner = _compile_read(declared)

    def kernel(value: object) -> object:
        if value is None:
            return None
        return inner(value)

    return kernel


def _compile_read(declared: DataType) -> CastKernel:
    if is_integral(declared):
        simple = declared.simple_string()

        def read_integral(value: object) -> object:
            if isinstance(value, bool) or not isinstance(value, int):
                raise QueryError(
                    f"cannot read {type(value).__name__} as {simple}"
                )
            # lenient demotion: out-of-range becomes NULL, like Hive's
            # LazyInteger parsing.
            return value if declared.accepts(value) else None

        return read_integral
    if isinstance(declared, (FloatType, DoubleType)):
        simple = declared.simple_string()

        def read_float(value: object) -> object:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise QueryError(f"cannot read value as {simple}")
            number = float(value)
            if math.isnan(number):
                # Hive's result path has no NaN: degrade to NULL
                # (HIVE-26528).
                return None
            if math.isinf(number):
                # ...but Infinity trips an overflow error instead — same
                # root cause, different behaviour (§8.2 discrepancy #7).
                raise QueryError(
                    f"value out of range for {simple}: {number}"
                )
            return number

        return read_float
    if isinstance(declared, DecimalType):
        simple = declared.simple_string()

        def read_decimal(value: object) -> object:
            if not isinstance(value, decimal.Decimal):
                raise QueryError("physical value is not a decimal")
            exponent = value.as_tuple().exponent
            scale = max(0, -exponent) if isinstance(exponent, int) else 0
            if scale != declared.scale:
                # strict scale validation — the SPARK-39158 mechanism.
                raise QueryError(
                    f"decimal scale {scale} does not match declared {simple}"
                )
            if not declared.accepts(value):
                return None
            return value

        return read_decimal
    if isinstance(declared, CharType):
        length = declared.length

        def read_char(value: object) -> object:
            if not isinstance(value, str):
                raise QueryError("physical value is not a string")
            return declared.pad(value[:length])

        return read_char
    if isinstance(declared, VarcharType):
        length = declared.length

        def read_varchar(value: object) -> object:
            if not isinstance(value, str):
                raise QueryError("physical value is not a string")
            return value[:length]

        return read_varchar
    if isinstance(declared, ArrayType):
        element = hive_read_kernel(declared.element_type)

        def read_array(value: object) -> object:
            if not isinstance(value, (list, tuple)):
                raise QueryError("physical value is not an array")
            return [element(v) for v in value]

        return read_array
    if isinstance(declared, MapType):
        key_kernel = hive_read_kernel(declared.key_type)
        value_kernel = hive_read_kernel(declared.value_type)

        def read_map(value: object) -> object:
            if not isinstance(value, dict):
                raise QueryError("physical value is not a map")
            return {
                key_kernel(k): value_kernel(v) for k, v in value.items()
            }

        return read_map
    if isinstance(declared, StructType):
        members = tuple(
            hive_read_kernel(f.data_type) for f in declared.fields
        )

        def read_struct(value: object) -> object:
            if not isinstance(value, (list, tuple)):
                raise QueryError("physical value is not a struct")
            return [member(v) for v, member in zip(value, members)]

        return read_struct
    return lambda value: value
