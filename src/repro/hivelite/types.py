"""Hive's view of the logical type system.

Hive's metastore is the *shared* piece of state between the engines, and
its normalizations are the mechanism behind several §8 discrepancies:

* identifiers (table, column and nested struct-field names) are stored
  **lower-cased** — the "not case preserving" family (HIVE-26533,
  SPARK-40409, discrepancy #3/#14);
* Hive has one TIMESTAMP type, so TIMESTAMP_NTZ collapses into it
  (discrepancy #8 / SPARK-40616);
* for self-describing formats that cannot back Spark's native schema
  (Avro), the registered schema is **derived from the file's physical
  schema** — BYTE/SHORT become INT before any row is ever written
  (the HIVE-26533 mechanism).
"""

from __future__ import annotations

from repro.common.schema import Schema
from repro.common.types import (
    ArrayType,
    DataType,
    IntervalType,
    MapType,
    StructField,
    StructType,
    TimestampNTZType,
    TimestampType,
)
from repro.errors import MetastoreError
from repro.formats.base import Serializer

__all__ = ["hive_type", "hive_schema", "metastore_schema_for"]


def hive_type(dtype: DataType) -> DataType:
    """Collapse a logical type to what Hive's DDL can declare."""
    if isinstance(dtype, TimestampNTZType):
        return TimestampType()
    if isinstance(dtype, IntervalType):
        raise MetastoreError("hive tables cannot declare interval columns")
    if isinstance(dtype, ArrayType):
        return ArrayType(hive_type(dtype.element_type))
    if isinstance(dtype, MapType):
        return MapType(hive_type(dtype.key_type), hive_type(dtype.value_type))
    if isinstance(dtype, StructType):
        # struct-field names are identifiers too: Hive lower-cases them.
        fields = tuple(
            StructField(f.name.lower(), hive_type(f.data_type), f.nullable)
            for f in dtype.fields
        )
        return StructType(fields)
    return dtype


def hive_schema(schema: Schema) -> Schema:
    """The schema exactly as the metastore stores it (lossy)."""
    return schema.map_types(hive_type).lower_cased()


def metastore_schema_for(declared: Schema, serializer: Serializer) -> Schema:
    """Schema registered for a table of the given storage format.

    For formats whose files carry a self-describing schema that Hive
    trusts over the DDL (Avro: ``avro.schema.literal``), the registered
    schema is the *physical* one — the declared BYTE column is an INT
    before the first row lands. Other formats (including text, whose
    SerDe parses strings back to the declared types on read) keep the
    declared schema.
    """
    if serializer.file_schema_is_authoritative:
        return hive_schema(serializer.physical_schema(declared))
    return hive_schema(declared)
