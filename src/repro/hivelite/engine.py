"""The HiveQL engine.

Executes the shared SQL subset with Hive semantics:

* identifiers resolve case-insensitively;
* inserted values are coerced leniently (NULL on failure,
  :func:`hive_write_cast`);
* ORC files are written with **positional column names** (``_col0`` ...),
  the convention behind SPARK-21686;
* reads validate physical values against the declared schema with
  Hive's strictness (:func:`hive_read_cast`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.result import QueryResult
from repro.common.row import Row
from repro.common.schema import Field, Schema
from repro.common.types import parse_type
from repro.errors import AnalysisException, QueryError, TableNotFoundError
from repro.faults.core import (
    apply_torn_write,
    fault_point,
    injection_active,
)
from repro.formats import serializer_for
from repro.formats.base import Serializer, TableData
from repro.formats.orc import HIVE_POSITIONAL_PROPERTY
from repro.formats.textfile import NULL_MARKER
from repro.hivelite.casts import (
    hive_read_kernel,
    hive_write_cast,
    hive_write_kernel,
)
from repro.hivelite.metastore import DEFAULT_DATABASE, HiveMetastore, Table
from repro.hivelite.types import metastore_schema_for
from repro.hivelite.warehouse import (
    Warehouse,
    parse_partition_dirname,
    partition_dirname,
)
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    CreateTable,
    DropTable,
    Insert,
    Literal,
    Select,
    Star,
)
from repro.sql.literals import DialectOptions, LiteralEvaluator
from repro.sql.parser import parse_statement
from repro.sql.plancache import PlanCache, PreparedFailure
from repro.storage.filesystem import FileSystem
from repro.tracing.core import event as trace_event
from repro.tracing.core import span as trace_span

__all__ = ["HiveServer"]

_POSITIONAL_PREFIX = "_col"


def _hive_cast_fn(value, source, target):
    """CAST(...) in HiveQL: lenient, NULL on failure."""
    del source
    return hive_write_cast(value, target)


@dataclass(frozen=True)
class _PreparedCreate:
    """CREATE TABLE with schemas and format analysis already done."""

    name: str
    schema: Schema
    storage_format: str
    properties: tuple[tuple[str, str], ...]
    if_not_exists: bool
    partition_schema: Schema

    def execute(self, server: "HiveServer") -> QueryResult:
        with trace_span(
            "hive.metastore.create_table",
            system="hive",
            peer_system="hive-metastore",
            operation="create_table",
            boundary="hive->metastore",
        ) as sp:
            if sp is not None:
                sp.attributes.update(
                    table=self.name, fmt=self.storage_format
                )
            # replay fast path: after the first (fully validated)
            # creation, re-register the identical frozen Table value
            table = self.__dict__.get("_table")
            if table is not None and table.database == server.database:
                trace_event("create.replayed")
                server.metastore.register_table(
                    table, if_not_exists=self.if_not_exists
                )
                return server._empty_result()
            existed = server.metastore.table_exists(self.name, server.database)
            created = server.metastore.create_table(
                self.name,
                self.schema,
                self.storage_format,
                database=server.database,
                properties=dict(self.properties),
                owner="hive",
                if_not_exists=self.if_not_exists,
                partition_schema=self.partition_schema,
            )
            if not existed:
                object.__setattr__(self, "_table", created)
            return server._empty_result()


@dataclass(frozen=True)
class _PreparedInsert:
    """INSERT with evaluation, coercion and serialization done."""

    table: Table
    blob: bytes
    partition: str | None
    overwrite: bool

    def execute(self, server: "HiveServer") -> QueryResult:
        with trace_span(
            "hive.warehouse.write",
            system="hive",
            peer_system="hdfs",
            operation="write_segment",
            boundary="hive->hdfs",
        ) as sp:
            if sp is not None:
                sp.attributes.update(
                    table=self.table.name,
                    fmt=self.table.storage_format,
                    bytes=len(self.blob),
                    overwrite=self.overwrite,
                )
            blob = self.blob
            action = fault_point(
                "hive->hdfs", "write_segment", ("torn_write",)
            )
            if action is not None and action.kind == "torn_write":
                blob = apply_torn_write(blob, action)
                trace_event("fault.torn_write", bytes_kept=len(blob))
            if self.overwrite:
                server.warehouse.truncate(self.table, self.partition)
            server.warehouse.write_segment(
                self.table, blob, self.partition
            )
        return server._empty_result()


@dataclass(frozen=True)
class _PreparedSelect:
    """SELECT with the catalog lookup done; scans stay per-call."""

    table: Table
    statement: Select

    def execute(self, server: "HiveServer") -> QueryResult:
        return server._execute_select(self.table, self.statement)


@dataclass
class HiveServer:
    """A HiveServer2-like endpoint bound to a metastore and filesystem."""

    metastore: HiveMetastore
    filesystem: FileSystem
    database: str = DEFAULT_DATABASE
    default_format: str = "text"
    _warnings: list[str] = field(default_factory=list)
    plan_cache: PlanCache = field(default_factory=PlanCache)
    plan_cache_enabled: bool = True

    def __post_init__(self) -> None:
        self.warehouse = Warehouse(self.filesystem)
        self._evaluator = LiteralEvaluator(
            DialectOptions(
                name="hive",
                fractional_literal="decimal",
                strict_datetime_literals=True,
                cast_fn=_hive_cast_fn,
            )
        )

    # -- public API -----------------------------------------------------

    def execute(self, sql: str) -> QueryResult:
        """Run one HiveQL statement and return its result."""
        with trace_span(
            "hive.execute", system="hive", operation="execute"
        ) as sp:
            if sp is not None:
                sp.attributes["statement"] = sql[:120]
            self._warnings = []
            statement = parse_statement(sql)
            if isinstance(statement, DropTable):
                # DROP is pure side effect; there is no analysis to reuse.
                return self._drop(statement)
            if not self.plan_cache_enabled or injection_active():
                # see SparkSession.sql: cached-plan replay would skip
                # prepare-time fault points, entangling the fault
                # schedule with cache history; bypassing is
                # outcome-neutral (PR 2 byte-identity)
                return self._execute_uncached(statement)
            fingerprint = (self.database, self.default_format)
            version = self.metastore.catalog_version
            plan = self.plan_cache.lookup(
                sql, fingerprint, version, self._dependency_state
            )
            if plan is None:
                trace_event(
                    "plan_cache.miss", conf_fingerprint=str(fingerprint)
                )
                plan, deps = self._prepare(statement)
                self.plan_cache.store(sql, fingerprint, version, deps, plan)
            else:
                trace_event(
                    "plan_cache.hit", conf_fingerprint=str(fingerprint)
                )
            return plan.execute(self)

    def _execute_uncached(self, statement) -> QueryResult:
        if isinstance(statement, CreateTable):
            return self._create(statement)
        if isinstance(statement, Insert):
            return self._insert(statement)
        if isinstance(statement, Select):
            return self._select(statement)
        raise QueryError(f"unsupported statement {statement!r}")

    # -- prepared execution ----------------------------------------------

    def _dependency_state(self, dep_key: tuple[str, str]):
        database, name = dep_key
        return self.metastore.table_state(name, database)

    def _table_deps(self, name: str):
        dep_key = (self.database, name)
        return ((dep_key, self._dependency_state(dep_key)),)

    def _prepare(self, statement):
        if isinstance(statement, CreateTable):
            return self._prepare_create(statement)
        if isinstance(statement, Insert):
            return self._prepare_insert(statement)
        if isinstance(statement, Select):
            return self._prepare_select(statement)
        raise QueryError(f"unsupported statement {statement!r}")

    def _prepare_create(self, statement: CreateTable):
        # CREATE analysis reads no catalog state: existence is checked
        # by the metastore at execute time, so the dep set is empty.
        try:
            schema, fmt, properties, partition_schema = self._analyze_create(
                statement
            )
        except Exception as exc:
            return PreparedFailure(exc), ()
        return (
            _PreparedCreate(
                name=statement.table,
                schema=schema,
                storage_format=fmt,
                properties=tuple(sorted(properties.items())),
                if_not_exists=statement.if_not_exists,
                partition_schema=partition_schema,
            ),
            (),
        )

    def _prepare_insert(self, statement: Insert):
        deps = self._table_deps(statement.table)
        try:
            table, partition, rows = self._analyze_insert(statement)
            serializer = serializer_for(table.storage_format)
            blob = self._serialize(serializer, table.schema, rows)
        except Exception as exc:
            return PreparedFailure(exc), deps
        return _PreparedInsert(table, blob, partition, statement.overwrite), deps

    def _prepare_select(self, statement: Select):
        deps = self._table_deps(statement.table)
        try:
            table = self._get_table(statement.table)
        except Exception as exc:
            return PreparedFailure(exc), deps
        return _PreparedSelect(table, statement), deps

    def _get_table(self, name: str) -> Table:
        """Catalog lookup, as a traced Hive→metastore call."""
        with trace_span(
            "hive.metastore.get_table",
            system="hive",
            peer_system="hive-metastore",
            operation="get_table",
            boundary="hive->metastore",
        ) as sp:
            action = fault_point(
                "hive->metastore", "get_table", ("stale_read",)
            )
            if action is not None and action.kind == "stale_read":
                # the lookup lands on a snapshot from before the table
                # existed; Hive has no retry here, so the wrong answer
                # propagates as a plain not-found
                trace_event(
                    "fault.stale_read", table=name, database=self.database
                )
                raise TableNotFoundError(
                    f"table {self.database}.{name} not found"
                )
            table = self.metastore.get_table(name, self.database)
            if sp is not None:
                sp.attributes.update(
                    table=name,
                    database=self.database,
                    fmt=table.storage_format,
                )
            return table

    # -- DDL ------------------------------------------------------------

    def _analyze_create(
        self, statement: CreateTable
    ) -> tuple[Schema, str, dict[str, str], Schema]:
        declared = Schema(
            tuple(
                Field(col.name, parse_type(col.type_text))
                for col in statement.columns
            )
        )
        fmt = statement.stored_as or self.default_format
        serializer = serializer_for(fmt)
        schema = metastore_schema_for(declared, serializer)
        partition_schema = Schema(
            tuple(
                Field(col.name.lower(), parse_type(col.type_text))
                for col in statement.partition_columns
            ),
            case_sensitive=False,
        )
        return schema, fmt, dict(statement.properties), partition_schema

    def _create(self, statement: CreateTable) -> QueryResult:
        schema, fmt, properties, partition_schema = self._analyze_create(
            statement
        )
        with trace_span(
            "hive.metastore.create_table",
            system="hive",
            peer_system="hive-metastore",
            operation="create_table",
            boundary="hive->metastore",
        ) as sp:
            if sp is not None:
                sp.attributes.update(table=statement.table, fmt=fmt)
            fault_point("hive->metastore", "create_table")
            self.metastore.create_table(
                statement.table,
                schema,
                fmt,
                database=self.database,
                properties=properties,
                owner="hive",
                if_not_exists=statement.if_not_exists,
                partition_schema=partition_schema,
            )
        return self._empty_result()

    def _drop(self, statement: DropTable) -> QueryResult:
        if self.metastore.table_exists(statement.table, self.database):
            table = self.metastore.get_table(statement.table, self.database)
            self.warehouse.drop_data(table)
        self.metastore.drop_table(
            statement.table, self.database, if_exists=statement.if_exists
        )
        return self._empty_result()

    # -- DML -----------------------------------------------------------------

    def _analyze_insert(
        self, statement: Insert
    ) -> tuple[Table, str | None, list[tuple]]:
        table = self._get_table(statement.table)
        partition = self._resolve_partition_spec(table, statement)
        kernels = [
            hive_write_kernel(column.data_type)
            for column in table.schema.fields
        ]
        arity = len(table.schema)
        rows = []
        for expressions in statement.rows:
            if len(expressions) != arity:
                raise AnalysisException(
                    f"INSERT arity {len(expressions)} != table arity {arity}"
                )
            values = []
            for expr, kernel in zip(expressions, kernels):
                typed = self._evaluator.evaluate(expr)
                values.append(kernel(typed.value))
            rows.append(tuple(values))
        return table, partition, rows

    def _insert(self, statement: Insert) -> QueryResult:
        table, partition, rows = self._analyze_insert(statement)
        serializer = serializer_for(table.storage_format)
        blob = self._serialize(serializer, table.schema, rows)
        with trace_span(
            "hive.warehouse.write",
            system="hive",
            peer_system="hdfs",
            operation="write_segment",
            boundary="hive->hdfs",
        ) as sp:
            if sp is not None:
                sp.attributes.update(
                    table=table.name,
                    fmt=table.storage_format,
                    bytes=len(blob),
                    overwrite=statement.overwrite,
                )
            action = fault_point(
                "hive->hdfs", "write_segment", ("torn_write",)
            )
            if action is not None and action.kind == "torn_write":
                blob = apply_torn_write(blob, action)
                trace_event("fault.torn_write", bytes_kept=len(blob))
            if statement.overwrite:
                self.warehouse.truncate(table, partition)
            self.warehouse.write_segment(table, blob, partition)
        return self._empty_result()

    def _resolve_partition_spec(self, table, statement: Insert) -> str | None:
        """Turn ``PARTITION (p='01', ...)`` into a directory chain."""
        if not table.is_partitioned:
            if statement.partition_spec:
                raise AnalysisException(
                    f"table {table.name} is not partitioned"
                )
            return None
        spec = {name.lower(): expr for name, expr in statement.partition_spec}
        if set(spec) != set(table.partition_schema.names()):
            raise AnalysisException(
                f"INSERT must name every partition column "
                f"{table.partition_schema.names()}, got {sorted(spec)}"
            )
        parts = []
        for column in table.partition_schema.fields:
            typed = self._evaluator.evaluate(spec[column.name])
            value = hive_write_cast(typed.value, column.data_type)
            parts.append(partition_dirname(column.name, value))
        return "/".join(parts)

    def _serialize(
        self, serializer: Serializer, schema: Schema, rows: list[tuple]
    ) -> bytes:
        with trace_span(
            "hive.serde.encode",
            system="hive",
            peer_system="serde",
            operation="encode",
            boundary="hive->serde",
        ) as sp:
            fault_point("hive->serde", "encode")
            properties: dict[str, str] = {"writer": "hive"}
            if serializer.format_name == "orc":
                # Hive's ORC writer names columns positionally; the real
                # names live only in the metastore (SPARK-21686).
                schema = schema.rename_positional(_POSITIONAL_PREFIX)
                properties[HIVE_POSITIONAL_PROPERTY] = "true"
                trace_event(
                    "orc.positional_rename",
                    prefix=_POSITIONAL_PREFIX,
                    columns=len(schema),
                )
            blob = serializer.write(schema, rows, properties)
            if sp is not None:
                sp.attributes.update(
                    fmt=serializer.format_name,
                    rows=len(rows),
                    bytes=len(blob),
                )
            return blob

    # -- queries --------------------------------------------------------------

    def _select(self, statement: Select) -> QueryResult:
        table = self._get_table(statement.table)
        return self._execute_select(table, statement)

    def _execute_select(self, table: Table, statement: Select) -> QueryResult:
        serializer = serializer_for(table.storage_format)
        rows: list[Row] = []
        if table.is_partitioned:
            schema = Schema(
                table.schema.fields + table.partition_schema.fields,
                case_sensitive=False,
            )
            column = table.partition_schema.fields[0]
            with trace_span(
                "hive.warehouse.scan",
                system="hive",
                peer_system="hdfs",
                operation="read_partitioned_segments",
                boundary="hive->hdfs",
            ) as sp:
                fault_point("hive->hdfs", "read_partitioned_segments")
                segments = list(
                    self.warehouse.read_partitioned_segments(table)
                )
                if sp is not None:
                    sp.attributes.update(
                        table=table.name, segments=len(segments)
                    )
            for dirname, blob in segments:
                _, text = parse_partition_dirname(dirname)
                # Hive types the directory string by the declared column
                # type — "01" in a string partition stays "01"
                partition_value = hive_write_cast(text, column.data_type)
                data = self._decode_blob(serializer, blob)
                mapper = self._row_mapper(data, table)
                for physical_row in data.rows:
                    base = mapper(physical_row)
                    rows.append(
                        Row(list(base) + [partition_value], schema)
                    )
        else:
            schema = table.schema
            with trace_span(
                "hive.warehouse.scan",
                system="hive",
                peer_system="hdfs",
                operation="read_segments",
                boundary="hive->hdfs",
            ) as sp:
                fault_point("hive->hdfs", "read_segments")
                blobs = list(self.warehouse.read_segments(table))
                if sp is not None:
                    sp.attributes.update(
                        table=table.name, segments=len(blobs)
                    )
            for blob in blobs:
                data = self._decode_blob(serializer, blob)
                mapper = self._row_mapper(data, table)
                for physical_row in data.rows:
                    rows.append(mapper(physical_row))
        rows = self._apply_where(rows, schema, statement.where)
        schema, rows = self._project(statement, schema, rows)
        return QueryResult(
            schema=schema,
            rows=tuple(rows),
            warnings=tuple(self._warnings),
            interface="hiveql",
        )

    @staticmethod
    def _decode_blob(serializer: Serializer, blob: bytes) -> TableData:
        """Deserialize one segment, as a traced Hive→SerDe call."""
        with trace_span(
            "hive.serde.decode",
            system="hive",
            peer_system="serde",
            operation="decode",
            boundary="hive->serde",
        ) as sp:
            fault_point("hive->serde", "decode")
            data = serializer.read(blob)
            if sp is not None:
                sp.attributes.update(
                    fmt=serializer.format_name,
                    bytes=len(blob),
                    rows=len(data.rows),
                )
            return data

    def _row_mapper(self, data: TableData, table: Table):
        """Compile the physical→declared mapping for one segment.

        Column resolution (positional vs by-name) and per-column cast
        kernels are decided once per segment instead of once per cell —
        and memoized on the (shared, read-only) decoded segment, keyed
        by the declared schema it is being read under.
        """
        mappers = data.__dict__.get("_hive_mappers")
        if mappers is None:
            mappers = {}
            object.__setattr__(data, "_hive_mappers", mappers)
        mapper = mappers.get(table.schema)
        if mapper is None:
            # The compiled mapper closes over nothing segment-specific:
            # column resolution and kernels depend only on the physical
            # schema, the positional property, the format, and the
            # declared schema. Lane tables hold one part file per
            # insert, all sharing those four — so an engine-level memo
            # compiles once per table shape instead of once per segment.
            key = (
                data.format_name,
                data.physical_schema,
                data.properties.get(HIVE_POSITIONAL_PROPERTY),
                table.schema,
            )
            shared = self.__dict__.setdefault("_shared_row_mappers", {})
            mapper = shared.get(key)
            if mapper is None:
                mapper = self._build_row_mapper(data, table)
                shared[key] = mapper
            mappers[table.schema] = mapper
        return mapper

    def _build_row_mapper(self, data: TableData, table: Table):
        physical = data.physical_schema
        positional = (
            data.properties.get(HIVE_POSITIONAL_PROPERTY) == "true"
            or all(
                name.startswith(_POSITIONAL_PREFIX) for name in physical.names()
            )
            or data.format_name in ("orc", "text")
        )
        is_text = data.format_name == "text"
        columns = []
        for index, column in enumerate(table.schema.fields):
            if positional:
                source = index
            else:
                source = self._index_by_name(physical, column.name)
            kernel = (
                hive_write_kernel(column.data_type)
                if is_text
                else hive_read_kernel(column.data_type)
            )
            columns.append((source, kernel))
        schema = table.schema

        if is_text:
            # LazySimpleSerDe: parse the stored string by the declared
            # type, NULL when it does not parse
            def mapper(row: Row) -> Row:
                values = []
                for source, kernel in columns:
                    raw = (
                        row[source]
                        if source is not None and source < len(row)
                        else None
                    )
                    if raw == NULL_MARKER:
                        values.append(None)
                    else:
                        values.append(kernel(raw))
                return Row(values, schema)

        else:

            def mapper(row: Row) -> Row:
                values = []
                for source, kernel in columns:
                    raw = (
                        row[source]
                        if source is not None and source < len(row)
                        else None
                    )
                    values.append(kernel(raw))
                return Row(values, schema)

        return mapper

    def _reconcile_row(self, row: Row, data: TableData, table: Table) -> Row:
        """Map one physical row onto the declared schema."""
        return self._row_mapper(data, table)(row)

    @staticmethod
    def _index_by_name(physical: Schema, name: str) -> int | None:
        lowered = name.lower()
        for index, fld in enumerate(physical.fields):
            if fld.name.lower() == lowered:
                return index
        return None

    def _apply_where(
        self, rows: list[Row], schema: Schema, where: Comparison | None
    ) -> list[Row]:
        if where is None:
            return rows
        if not isinstance(where.left, ColumnRef) or not isinstance(
            where.right, Literal
        ):
            raise QueryError("WHERE supports `column <op> literal` only")
        index = schema.index_of(where.left.name)
        target = self._evaluator.evaluate(where.right).value
        return [row for row in rows if _compare(row[index], where.op, target)]

    def _project(
        self, statement: Select, schema: Schema, rows: list[Row]
    ) -> tuple[Schema, list[Row]]:
        if len(statement.projections) == 1 and isinstance(
            statement.projections[0], Star
        ):
            return schema, rows
        indices = []
        fields = []
        for projection in statement.projections:
            if not isinstance(projection, ColumnRef):
                raise QueryError("projections must be columns or *")
            index = schema.index_of(projection.name)
            indices.append(index)
            fields.append(schema.fields[index])
        projected_schema = Schema(tuple(fields), schema.case_sensitive)
        projected_rows = [
            Row([row[i] for i in indices], projected_schema) for row in rows
        ]
        return projected_schema, projected_rows

    def _empty_result(self) -> QueryResult:
        return QueryResult(
            schema=Schema(()),
            warnings=tuple(self._warnings),
            interface="hiveql",
        )


def _compare(value: object, op: str, target: object) -> bool:
    if value is None or target is None:
        return False
    try:
        if op == "=":
            return value == target
        if op in ("<>", "!="):
            return value != target
        if op == "<":
            return value < target
        if op == ">":
            return value > target
        if op == "<=":
            return value <= target
        if op == ">=":
            return value >= target
    except TypeError:
        return False
    raise QueryError(f"unknown comparison operator {op!r}")
