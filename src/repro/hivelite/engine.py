"""The HiveQL engine.

Executes the shared SQL subset with Hive semantics:

* identifiers resolve case-insensitively;
* inserted values are coerced leniently (NULL on failure,
  :func:`hive_write_cast`);
* ORC files are written with **positional column names** (``_col0`` ...),
  the convention behind SPARK-21686;
* reads validate physical values against the declared schema with
  Hive's strictness (:func:`hive_read_cast`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.result import QueryResult
from repro.common.row import Row
from repro.common.schema import Field, Schema
from repro.common.types import parse_type
from repro.errors import AnalysisException, QueryError
from repro.formats import serializer_for
from repro.formats.base import Serializer, TableData
from repro.formats.orc import HIVE_POSITIONAL_PROPERTY
from repro.formats.textfile import NULL_MARKER
from repro.hivelite.casts import hive_read_cast, hive_write_cast
from repro.hivelite.metastore import DEFAULT_DATABASE, HiveMetastore, Table
from repro.hivelite.types import metastore_schema_for
from repro.hivelite.warehouse import (
    Warehouse,
    parse_partition_dirname,
    partition_dirname,
)
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    CreateTable,
    DropTable,
    Insert,
    Literal,
    Select,
    Star,
)
from repro.sql.literals import DialectOptions, LiteralEvaluator
from repro.sql.parser import parse_statement
from repro.storage.filesystem import FileSystem

__all__ = ["HiveServer"]

_POSITIONAL_PREFIX = "_col"


def _hive_cast_fn(value, source, target):
    """CAST(...) in HiveQL: lenient, NULL on failure."""
    del source
    return hive_write_cast(value, target)


@dataclass
class HiveServer:
    """A HiveServer2-like endpoint bound to a metastore and filesystem."""

    metastore: HiveMetastore
    filesystem: FileSystem
    database: str = DEFAULT_DATABASE
    default_format: str = "text"
    _warnings: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.warehouse = Warehouse(self.filesystem)
        self._evaluator = LiteralEvaluator(
            DialectOptions(
                name="hive",
                fractional_literal="decimal",
                strict_datetime_literals=True,
                cast_fn=_hive_cast_fn,
            )
        )

    # -- public API -----------------------------------------------------

    def execute(self, sql: str) -> QueryResult:
        """Run one HiveQL statement and return its result."""
        self._warnings = []
        statement = parse_statement(sql)
        if isinstance(statement, CreateTable):
            return self._create(statement)
        if isinstance(statement, DropTable):
            return self._drop(statement)
        if isinstance(statement, Insert):
            return self._insert(statement)
        if isinstance(statement, Select):
            return self._select(statement)
        raise QueryError(f"unsupported statement {statement!r}")

    # -- DDL ------------------------------------------------------------

    def _create(self, statement: CreateTable) -> QueryResult:
        declared = Schema(
            tuple(
                Field(col.name, parse_type(col.type_text))
                for col in statement.columns
            )
        )
        fmt = statement.stored_as or self.default_format
        serializer = serializer_for(fmt)
        schema = metastore_schema_for(declared, serializer)
        partition_schema = Schema(
            tuple(
                Field(col.name.lower(), parse_type(col.type_text))
                for col in statement.partition_columns
            ),
            case_sensitive=False,
        )
        self.metastore.create_table(
            statement.table,
            schema,
            fmt,
            database=self.database,
            properties=dict(statement.properties),
            owner="hive",
            if_not_exists=statement.if_not_exists,
            partition_schema=partition_schema,
        )
        return self._empty_result()

    def _drop(self, statement: DropTable) -> QueryResult:
        if self.metastore.table_exists(statement.table, self.database):
            table = self.metastore.get_table(statement.table, self.database)
            self.warehouse.drop_data(table)
        self.metastore.drop_table(
            statement.table, self.database, if_exists=statement.if_exists
        )
        return self._empty_result()

    # -- DML -----------------------------------------------------------------

    def _insert(self, statement: Insert) -> QueryResult:
        table = self.metastore.get_table(statement.table, self.database)
        serializer = serializer_for(table.storage_format)
        partition = self._resolve_partition_spec(table, statement)
        rows = []
        for expressions in statement.rows:
            if len(expressions) != len(table.schema):
                raise AnalysisException(
                    f"INSERT arity {len(expressions)} != table arity "
                    f"{len(table.schema)}"
                )
            values = []
            for expr, column in zip(expressions, table.schema.fields):
                typed = self._evaluator.evaluate(expr)
                values.append(hive_write_cast(typed.value, column.data_type))
            rows.append(tuple(values))
        if statement.overwrite:
            self.warehouse.truncate(table, partition)
        blob = self._serialize(serializer, table.schema, rows)
        self.warehouse.write_segment(table, blob, partition)
        return self._empty_result()

    def _resolve_partition_spec(self, table, statement: Insert) -> str | None:
        """Turn ``PARTITION (p='01', ...)`` into a directory chain."""
        if not table.is_partitioned:
            if statement.partition_spec:
                raise AnalysisException(
                    f"table {table.name} is not partitioned"
                )
            return None
        spec = {name.lower(): expr for name, expr in statement.partition_spec}
        if set(spec) != set(table.partition_schema.names()):
            raise AnalysisException(
                f"INSERT must name every partition column "
                f"{table.partition_schema.names()}, got {sorted(spec)}"
            )
        parts = []
        for column in table.partition_schema.fields:
            typed = self._evaluator.evaluate(spec[column.name])
            value = hive_write_cast(typed.value, column.data_type)
            parts.append(partition_dirname(column.name, value))
        return "/".join(parts)

    def _serialize(
        self, serializer: Serializer, schema: Schema, rows: list[tuple]
    ) -> bytes:
        properties: dict[str, str] = {"writer": "hive"}
        if serializer.format_name == "orc":
            # Hive's ORC writer names columns positionally; the real
            # names live only in the metastore (SPARK-21686).
            schema = schema.rename_positional(_POSITIONAL_PREFIX)
            properties[HIVE_POSITIONAL_PROPERTY] = "true"
        return serializer.write(schema, rows, properties)

    # -- queries --------------------------------------------------------------

    def _select(self, statement: Select) -> QueryResult:
        table = self.metastore.get_table(statement.table, self.database)
        serializer = serializer_for(table.storage_format)
        rows: list[Row] = []
        if table.is_partitioned:
            schema = Schema(
                table.schema.fields + table.partition_schema.fields,
                case_sensitive=False,
            )
            column = table.partition_schema.fields[0]
            for dirname, blob in self.warehouse.read_partitioned_segments(
                table
            ):
                _, text = parse_partition_dirname(dirname)
                # Hive types the directory string by the declared column
                # type — "01" in a string partition stays "01"
                partition_value = hive_write_cast(text, column.data_type)
                data = serializer.read(blob)
                for physical_row in data.rows:
                    base = self._reconcile_row(physical_row, data, table)
                    rows.append(
                        Row(list(base) + [partition_value], schema)
                    )
        else:
            schema = table.schema
            for blob in self.warehouse.read_segments(table):
                data = serializer.read(blob)
                for physical_row in data.rows:
                    rows.append(
                        self._reconcile_row(physical_row, data, table)
                    )
        rows = self._apply_where(rows, schema, statement.where)
        schema, rows = self._project(statement, schema, rows)
        return QueryResult(
            schema=schema,
            rows=tuple(rows),
            warnings=tuple(self._warnings),
            interface="hiveql",
        )

    def _reconcile_row(self, row: Row, data: TableData, table: Table) -> Row:
        """Map one physical row onto the declared schema."""
        physical = data.physical_schema
        positional = (
            data.properties.get(HIVE_POSITIONAL_PROPERTY) == "true"
            or all(
                name.startswith(_POSITIONAL_PREFIX) for name in physical.names()
            )
            or data.format_name in ("orc", "text")
        )
        values = []
        for index, column in enumerate(table.schema.fields):
            if positional:
                raw = row[index] if index < len(row) else None
            else:
                raw = self._by_name(row, physical, column.name)
            if data.format_name == "text":
                # LazySimpleSerDe: parse the stored string by the
                # declared type, NULL when it does not parse
                if raw == NULL_MARKER:
                    values.append(None)
                else:
                    values.append(hive_write_cast(raw, column.data_type))
            else:
                values.append(hive_read_cast(raw, column.data_type))
        return Row(values, table.schema)

    @staticmethod
    def _by_name(row: Row, physical: Schema, name: str) -> object:
        for index, fld in enumerate(physical.fields):
            if fld.name.lower() == name.lower():
                return row[index]
        return None

    def _apply_where(
        self, rows: list[Row], schema: Schema, where: Comparison | None
    ) -> list[Row]:
        if where is None:
            return rows
        if not isinstance(where.left, ColumnRef) or not isinstance(
            where.right, Literal
        ):
            raise QueryError("WHERE supports `column <op> literal` only")
        index = schema.index_of(where.left.name)
        target = self._evaluator.evaluate(where.right).value
        return [row for row in rows if _compare(row[index], where.op, target)]

    def _project(
        self, statement: Select, schema: Schema, rows: list[Row]
    ) -> tuple[Schema, list[Row]]:
        if len(statement.projections) == 1 and isinstance(
            statement.projections[0], Star
        ):
            return schema, rows
        indices = []
        fields = []
        for projection in statement.projections:
            if not isinstance(projection, ColumnRef):
                raise QueryError("projections must be columns or *")
            index = schema.index_of(projection.name)
            indices.append(index)
            fields.append(schema.fields[index])
        projected_schema = Schema(tuple(fields), schema.case_sensitive)
        projected_rows = [
            Row([row[i] for i in indices], projected_schema) for row in rows
        ]
        return projected_schema, projected_rows

    def _empty_result(self) -> QueryResult:
        return QueryResult(
            schema=Schema(()),
            warnings=tuple(self._warnings),
            interface="hiveql",
        )


def _compare(value: object, op: str, target: object) -> bool:
    if value is None or target is None:
        return False
    try:
        if op == "=":
            return value == target
        if op in ("<>", "!="):
            return value != target
        if op == "<":
            return value < target
        if op == ">":
            return value > target
        if op == "<=":
            return value <= target
        if op == ">=":
            return value >= target
    except TypeError:
        return False
    raise QueryError(f"unknown comparison operator {op!r}")
