"""Mini Hive: metastore, HiveQL engine, Hive type/coercion semantics."""

from repro.hivelite.casts import hive_read_cast, hive_write_cast
from repro.hivelite.engine import HiveServer
from repro.hivelite.metastore import DEFAULT_DATABASE, HiveMetastore, Table
from repro.hivelite.types import hive_schema, hive_type, metastore_schema_for
from repro.hivelite.warehouse import Warehouse

__all__ = [
    "hive_read_cast",
    "hive_write_cast",
    "HiveServer",
    "DEFAULT_DATABASE",
    "HiveMetastore",
    "Table",
    "hive_schema",
    "hive_type",
    "metastore_schema_for",
    "Warehouse",
]
