"""Warehouse layout: where table data lives on the shared filesystem.

Both engines read and write the same part files under a table's
location; only the serializer bytes travel between them. This module
owns the part-file and partition-directory naming conventions.

Partition values are **strings in directory names** (``p=01``) — the
single most consequential piece of shared metadata in the layout,
because each engine re-types those strings on its own terms (Hive by
the declared column type, Spark by value inference). That divergence is
the paper's Address/naming discrepancy family (Table 4: 10/61 cases).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.hivelite.metastore import Table
from repro.storage.filesystem import FileSystem

__all__ = ["Warehouse", "partition_dirname", "parse_partition_dirname"]


def partition_dirname(column: str, value: object) -> str:
    """``p=01`` — the on-disk spelling of one partition value."""
    text = "__HIVE_DEFAULT_PARTITION__" if value is None else str(value)
    if "/" in text or "=" in text:
        raise StorageError(f"unencodable partition value {text!r}")
    return f"{column}={text}"


def parse_partition_dirname(dirname: str) -> tuple[str, str]:
    column, sep, text = dirname.partition("=")
    if not sep or not column:
        raise StorageError(f"not a partition directory: {dirname!r}")
    return column, text


@dataclass
class Warehouse:
    filesystem: FileSystem

    # -- unpartitioned layout -------------------------------------------

    def part_paths(self, table: Table, partition: str | None = None) -> list[str]:
        directory = (
            f"{table.location}/{partition}" if partition else table.location
        )
        if not self.filesystem.exists(directory):
            return []
        return sorted(
            status.path
            for status in self.filesystem.listdir(directory)
            if not status.is_directory
        )

    def write_segment(
        self, table: Table, blob: bytes, partition: str | None = None
    ) -> str:
        directory = (
            f"{table.location}/{partition}" if partition else table.location
        )
        if self.filesystem.exists(directory):
            index = sum(
                not status.is_directory
                for status in self.filesystem.listdir(directory)
            )
        else:
            self.filesystem.mkdirs(directory)
            index = 0
        path = f"{directory}/part-{index:05d}.{table.storage_format}"
        self.filesystem.write(path, blob, overwrite=False)
        return path

    def read_segments(self, table: Table) -> list[bytes]:
        return [self.filesystem.read(path) for path in self.part_paths(table)]

    # -- partitioned layout ------------------------------------------------

    def partitions(self, table: Table) -> list[str]:
        """Partition directory names (``p=01``), sorted."""
        if not self.filesystem.exists(table.location):
            return []
        return sorted(
            status.path.rsplit("/", 1)[-1]
            for status in self.filesystem.listdir(table.location)
            if status.is_directory
        )

    def read_partitioned_segments(
        self, table: Table
    ) -> list[tuple[str, bytes]]:
        """(partition dirname, blob) for every part file, sorted."""
        out: list[tuple[str, bytes]] = []
        for partition in self.partitions(table):
            for path in self.part_paths(table, partition):
                out.append((partition, self.filesystem.read(path)))
        return out

    # -- maintenance -----------------------------------------------------------

    def truncate(self, table: Table, partition: str | None = None) -> int:
        if partition is not None:
            paths = self.part_paths(table, partition)
            for path in paths:
                self.filesystem.delete(path)
            return len(paths)
        count = len(self.part_paths(table))
        if self.filesystem.exists(table.location):
            for status in self.filesystem.listdir(table.location):
                if status.is_directory:
                    count += len(
                        self.part_paths(
                            table, status.path.rsplit("/", 1)[-1]
                        )
                    )
            self.filesystem.delete(table.location, recursive=True)
        return count

    def drop_data(self, table: Table) -> None:
        if self.filesystem.exists(table.location):
            self.filesystem.delete(table.location, recursive=True)
