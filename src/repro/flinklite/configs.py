"""Flink configuration surface (the keys the scenarios read)."""

from __future__ import annotations

from repro.common.config import ConfigKey, Configuration, parse_int

__all__ = [
    "FlinkConf",
    "FLINK_CONFIG_KEYS",
    "REQUEST_INTERVAL_MS",
    "TM_PROCESS_SIZE_MB",
    "JM_PROCESS_SIZE_MB",
    "HEAP_CUTOFF_RATIO",
    "HEAP_CUTOFF_MIN_MB",
]

#: Workaround #1 for FLINK-12342 made the re-request interval
#: configurable under exactly this name.
REQUEST_INTERVAL_MS = "yarn.heartbeat.container-request-interval"
TM_PROCESS_SIZE_MB = "taskmanager.memory.process.size"
JM_PROCESS_SIZE_MB = "jobmanager.memory.process.size"
HEAP_CUTOFF_RATIO = "containerized.heap-cutoff-ratio"
HEAP_CUTOFF_MIN_MB = "containerized.heap-cutoff-min"

FLINK_CONFIG_KEYS: list[ConfigKey] = [
    ConfigKey(REQUEST_INTERVAL_MS, default=500, parser=parse_int),
    ConfigKey(TM_PROCESS_SIZE_MB, default=1728, parser=parse_int),
    ConfigKey(JM_PROCESS_SIZE_MB, default=1600, parser=parse_int),
    ConfigKey(
        HEAP_CUTOFF_RATIO,
        default="0.25",
        doc="Fraction of the container kept as non-heap headroom; setting "
        "this to 0 reproduces FLINK-887 (JVM fills the whole container "
        "and the pmem monitor kills it).",
    ),
    ConfigKey(HEAP_CUTOFF_MIN_MB, default=600, parser=parse_int),
    ConfigKey("taskmanager.numberOfTaskSlots", default=1, parser=parse_int),
    ConfigKey("parallelism.default", default=1, parser=parse_int),
    ConfigKey("yarn.application.queue", default="default"),
]


class FlinkConf(Configuration):
    def __init__(self) -> None:
        super().__init__(system="flink")
        self.declare_all(FLINK_CONFIG_KEYS)

    @property
    def heap_cutoff_ratio(self) -> float:
        return float(self.get(HEAP_CUTOFF_RATIO))
