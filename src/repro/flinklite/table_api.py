"""Flink's table layer over the Hive catalog — FLINK-17189 executable.

Table 6's type-confusion example: "Flink inserts a PROCTIME-typed value
as the TIMESTAMP type in Hive, but fails to translate it back." Flink's
PROCTIME is a *processing-time attribute*: a timestamp plus the marker
that makes windowed operators work. The Hive catalog can only store
``timestamp``, so the marker is dropped at write time; on read-back the
attribute cannot be reconstructed and time-windowed jobs fail.

Also provides the stream→table creation step Table 5 describes ("CSI
failures are classified as 'Stream' before table creation and as
'Table' after"): a dynamic table over a Kafka-like partition log.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.common.row import Row
from repro.common.schema import Field, Schema
from repro.common.types import TimestampType
from repro.errors import QueryError
from repro.hivelite.engine import HiveServer
from repro.kafkalite.log import PartitionLog

__all__ = ["PROCTIME_MARKER", "FlinkTableEnvironment", "ProctimeLostError"]

#: Flink stashes the time-attribute marker in table properties when the
#: catalog supports it; the Hive catalog path never writes it.
PROCTIME_MARKER = "flink.proctime.column"


class ProctimeLostError(QueryError):
    """A time-windowed operation needed a PROCTIME attribute that the
    catalog round trip destroyed (FLINK-17189)."""


@dataclass
class FlinkTableEnvironment:
    """A minimal Flink table environment sharing Hive's catalog."""

    hive: HiveServer
    #: which columns are processing-time attributes, per Flink table
    _proctime_columns: dict[str, str] = None

    def __post_init__(self) -> None:
        self._proctime_columns = {}

    # -- stream -> table (the Table 5 transition) ----------------------

    def table_from_stream(
        self,
        name: str,
        log: PartitionLog,
        schema: Schema,
        *,
        proctime_column: str | None = None,
    ) -> list[Row]:
        """Materialize a dynamic table from a stream's records.

        Each record's value must be a dict of column values; a proctime
        column, if named, is synthesized from record timestamps.
        """
        fields = list(schema.fields)
        if proctime_column is not None:
            fields.append(Field(proctime_column, TimestampType()))
            self._proctime_columns[name] = proctime_column
        full_schema = Schema(tuple(fields), case_sensitive=False)
        rows = []
        record = log.read_from(0)
        position = 0
        while record is not None:
            payload = record.value
            if not isinstance(payload, dict):
                raise QueryError(
                    f"stream record at offset {record.offset} is not a row"
                )
            values = [payload.get(f.name) for f in schema.fields]
            if proctime_column is not None:
                values.append(
                    datetime.datetime(1970, 1, 1)
                    + datetime.timedelta(milliseconds=record.timestamp_ms)
                )
            rows.append(Row(values, full_schema))
            position = record.offset + 1
            record = log.read_from(position)
        return rows

    # -- catalog round trip (FLINK-17189) ---------------------------------

    def write_to_hive(self, name: str, rows: list[Row], schema: Schema) -> None:
        """Persist a Flink table through the Hive catalog.

        PROCTIME columns are written as plain TIMESTAMP — the Hive
        catalog has no richer type, so the attribute marker is dropped
        here (the write half of FLINK-17189).
        """
        columns = ", ".join(
            f"{f.name} {f.data_type.simple_string()}" for f in schema.fields
        )
        self.hive.execute(f"CREATE TABLE {name} ({columns}) STORED AS parquet")
        for row in rows:
            literals = ", ".join(_sql_literal(v) for v in row)
            self.hive.execute(f"INSERT INTO {name} VALUES ({literals})")

    def read_from_hive(self, name: str) -> tuple[Schema, list[Row]]:
        """Read a table back through the catalog.

        The schema arrives as plain Hive types; whether a timestamp was
        once a PROCTIME attribute is unrecoverable.
        """
        result = self.hive.execute(f"SELECT * FROM {name}")
        return result.schema, list(result.rows)

    def window_aggregate(
        self, name: str, *, window_minutes: int = 5
    ) -> dict[datetime.datetime, int]:
        """A processing-time windowed count — *requires* the attribute.

        Raises :class:`ProctimeLostError` when the table's proctime
        column did not survive the catalog round trip.
        """
        proctime = self._proctime_columns.get(name)
        if proctime is None:
            raise ProctimeLostError(
                f"table {name!r} has no PROCTIME attribute; the Hive "
                "catalog stored it as a plain TIMESTAMP (FLINK-17189)"
            )
        schema, rows = self.read_from_hive(name)
        index = schema.index_of(proctime)
        window = datetime.timedelta(minutes=window_minutes)
        counts: dict[datetime.datetime, int] = {}
        epoch = datetime.datetime(1970, 1, 1)
        for row in rows:
            ts = row[index]
            bucket = epoch + window * ((ts - epoch) // window)
            counts[bucket] = counts.get(bucket, 0) + 1
        return counts

    def register_proctime(self, name: str, column: str) -> None:
        """The FLINK-17189 fix direction: carry the attribute out of
        band (table properties) and re-register it after a read."""
        self._proctime_columns[name] = column


def _sql_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, datetime.datetime):
        return f"TIMESTAMP '{value.isoformat(sep=' ')}'"
    if isinstance(value, datetime.date):
        return f"DATE '{value.isoformat()}'"
    text = str(value).replace("'", "''")
    return f"'{text}'"
