"""vcore discovery — the FLINK-5542 wrong-invocation-context misuse.

Finding 11's second pattern: "API invocation in a wrong context. For
example, in FLINK-5542, an API used for reading local vcore information
is used in a global context, causing misinformation of available
cores." Both APIs exist here; which one a caller uses in which context
is the bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ClusterInfo", "local_vcores", "cluster_vcores"]


@dataclass
class ClusterInfo:
    """Per-node vcore counts as YARN reports them."""

    node_vcores: list[int] = field(default_factory=list)
    #: the driver/client machine's own core count
    local_machine_vcores: int = 4

    def add_node(self, vcores: int) -> None:
        self.node_vcores.append(vcores)

    @property
    def total_vcores(self) -> int:
        return sum(self.node_vcores)


def local_vcores(cluster: ClusterInfo) -> int:
    """The *local machine's* cores — valid only in a local context."""
    return cluster.local_machine_vcores


def cluster_vcores(cluster: ClusterInfo) -> int:
    """Aggregate cluster capacity — the API a global context needs."""
    return cluster.total_vcores
