"""Flink's YARN resource manager connector — FLINK-12342 and its fixes.

Figure 1: Flink keeps a count of containers it still needs and
re-requests every 500 ms. Its use of the YARN allocate API assumes the
request is *served within the interval*; when allocation takes longer,
the pending count snowballs (1, then 1+2, then 1+2+3, ...), ending in
thousands of queued requests.

Figure 5 documents the three historical responses, all reproducible
here via ``FixStage``:

1. ``WORKAROUND_INTERVAL`` — make the 500 ms interval configurable
   (``yarn.heartbeat.container-request-interval``);
2. ``WORKAROUND_DECREMENT`` — decrement the pending count as soon as
   the request is submitted, so re-requests stop aggregating;
3. ``RESOLUTION_ASYNC`` — rewrite the interaction as asynchronous
   (``NMClientAsync``): request once, rely on callbacks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.events import EventLoop, Process
from repro.flinklite.configs import REQUEST_INTERVAL_MS, FlinkConf
from repro.yarnlite.resourcemanager import Container, ResourceManager
from repro.yarnlite.resources import Resource

__all__ = ["FixStage", "FlinkYarnResourceManager"]


class FixStage(enum.Enum):
    BUGGY = "buggy"
    WORKAROUND_INTERVAL = "workaround_interval"
    WORKAROUND_DECREMENT = "workaround_decrement"
    RESOLUTION_ASYNC = "resolution_async"


@dataclass
class RequestLogEntry:
    time_ms: int
    count: int
    pending_after: int


class FlinkYarnResourceManager(Process):
    """The Flink-side container request loop."""

    def __init__(
        self,
        loop: EventLoop,
        yarn: ResourceManager,
        *,
        needed_containers: int,
        container_resource: Resource = Resource(1024, 1),
        conf: FlinkConf | None = None,
        fix_stage: FixStage = FixStage.BUGGY,
    ) -> None:
        super().__init__(loop, "flink-yarn-rm")
        self.yarn = yarn
        self.conf = conf or FlinkConf()
        self.fix_stage = fix_stage
        self.container_resource = container_resource
        self.needed = needed_containers
        self.unacked = 0  # requests sent, not yet acknowledged
        self.allocated: list[Container] = []
        self.request_log: list[RequestLogEntry] = []
        self._handle = yarn.register(self._on_containers_allocated)
        self._stopped = False

    # -- public metrics ----------------------------------------------------

    @property
    def total_requested(self) -> int:
        return self._handle.requested_total

    @property
    def satisfied(self) -> bool:
        return self.needed <= 0

    def overload_factor(self, originally_needed: int) -> float:
        """How many times more containers were requested than needed."""
        if originally_needed == 0:
            return 0.0
        return self.total_requested / originally_needed

    # -- the loop ----------------------------------------------------------

    def start(self) -> None:
        if self.fix_stage is FixStage.RESOLUTION_ASYNC:
            # the fixed interaction: one asynchronous batch, no polling
            self._request(self.needed)
            return
        self._tick()

    def _interval_ms(self) -> int:
        return int(self.conf.get(REQUEST_INTERVAL_MS))

    def _tick(self) -> None:
        if self._stopped or self.satisfied:
            return
        if self.fix_stage is FixStage.WORKAROUND_DECREMENT:
            # workaround #2: only re-request what is not already in flight
            outstanding = max(0, self.needed - self.unacked)
            if outstanding > 0:
                self._request(outstanding)
        else:
            # the buggy aggregation: pending unacknowledged requests are
            # re-submitted *plus* the still-needed count
            self._request(self.unacked + self.needed)
        self.schedule(self._interval_ms(), self._tick, "flink-request-tick")

    def _request(self, count: int) -> None:
        if count <= 0:
            return
        self.yarn.request_containers(
            self._handle, count, self.container_resource
        )
        self.unacked += count
        self.request_log.append(
            RequestLogEntry(self.now_ms, count, self.unacked)
        )

    def _on_containers_allocated(self, containers: list[Container]) -> None:
        for container in containers:
            self.unacked = max(0, self.unacked - 1)
            if self.needed > 0:
                self.needed -= 1
                self.allocated.append(container)
            else:
                # excess container from the snowballed requests
                self.yarn.release(container)
        if self.satisfied:
            self._stopped = True
