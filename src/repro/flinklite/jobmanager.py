"""Flink JobManager memory sizing inside a YARN container (FLINK-887)
and container-size arithmetic against YARN schedulers (FLINK-19141)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.flinklite.configs import (
    HEAP_CUTOFF_MIN_MB,
    JM_PROCESS_SIZE_MB,
    FlinkConf,
)
from repro.yarnlite.configs import MIN_ALLOC_MB, MIN_ALLOC_VCORES, YarnConf
from repro.yarnlite.resources import Resource

__all__ = ["jvm_heap_for_container", "expected_container_resource", "JobManagerSpec"]


def jvm_heap_for_container(conf: FlinkConf, container_mb: int) -> int:
    """JVM heap Flink configures for a container of the given size.

    With the default cutoff, part of the container is reserved for
    off-heap/native memory; with ``containerized.heap-cutoff-ratio`` set
    to 0 the JVM is allowed to use the whole container — and JVM
    processes exceed their heap, so the pmem monitor kills the container
    (FLINK-887).
    """
    ratio = conf.heap_cutoff_ratio
    cutoff = max(
        int(container_mb * ratio), int(conf.get(HEAP_CUTOFF_MIN_MB)) if ratio > 0 else 0
    )
    return container_mb - cutoff


def expected_container_resource(
    flink_conf: FlinkConf, yarn_conf: YarnConf, requested: Resource
) -> Resource:
    """What *Flink* believes YARN will allocate for ``requested``.

    Flink's arithmetic reads the ``yarn.scheduler.minimum-allocation-*``
    keys — correct for the capacity scheduler, wrong for the fair
    scheduler, which normalizes with the increment-allocation keys
    instead (FLINK-19141 / Figure 3).
    """
    del flink_conf  # the computation only needs YARN's (assumed) keys
    step = Resource(
        int(yarn_conf.get(MIN_ALLOC_MB)),
        int(yarn_conf.get(MIN_ALLOC_VCORES)),
    )
    return requested.round_up_to(step)


@dataclass
class JobManagerSpec:
    """A launch-ready JobManager: container size plus JVM sizing."""

    conf: FlinkConf

    def container_mb(self) -> int:
        return int(self.conf.get(JM_PROCESS_SIZE_MB))

    def jvm_heap_mb(self) -> int:
        return jvm_heap_for_container(self.conf, self.container_mb())

    def peak_pmem_mb(self) -> int:
        """JVM physical footprint: heap plus ~15% native overhead."""
        return int(self.jvm_heap_mb() * 1.15)
