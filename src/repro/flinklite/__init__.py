"""Mini Flink: YARN connector loop, JobManager sizing, configuration."""

from repro.flinklite.configs import (
    FLINK_CONFIG_KEYS,
    HEAP_CUTOFF_MIN_MB,
    HEAP_CUTOFF_RATIO,
    JM_PROCESS_SIZE_MB,
    REQUEST_INTERVAL_MS,
    TM_PROCESS_SIZE_MB,
    FlinkConf,
)
from repro.flinklite.jobmanager import (
    JobManagerSpec,
    expected_container_resource,
    jvm_heap_for_container,
)
from repro.flinklite.vcores import ClusterInfo, cluster_vcores, local_vcores
from repro.flinklite.yarn_connector import FixStage, FlinkYarnResourceManager

__all__ = [
    "FLINK_CONFIG_KEYS",
    "HEAP_CUTOFF_MIN_MB",
    "HEAP_CUTOFF_RATIO",
    "JM_PROCESS_SIZE_MB",
    "REQUEST_INTERVAL_MS",
    "TM_PROCESS_SIZE_MB",
    "FlinkConf",
    "JobManagerSpec",
    "expected_container_resource",
    "jvm_heap_for_container",
    "ClusterInfo",
    "cluster_vcores",
    "local_vcores",
    "FixStage",
    "FlinkYarnResourceManager",
]
