"""The two YARN schedulers and their *different* normalization rules."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError
from repro.yarnlite.configs import (
    INCREMENT_MB,
    INCREMENT_VCORES,
    MAX_ALLOC_MB,
    MAX_ALLOC_VCORES,
    MIN_ALLOC_MB,
    MIN_ALLOC_VCORES,
    YarnConf,
)
from repro.yarnlite.resources import Resource

__all__ = ["Scheduler", "CapacityScheduler", "FairScheduler", "scheduler_for"]


@dataclass
class Scheduler:
    conf: YarnConf
    name: str = "abstract"

    def max_allocation(self) -> Resource:
        return Resource(
            int(self.conf.get(MAX_ALLOC_MB)),
            int(self.conf.get(MAX_ALLOC_VCORES)),
        )

    def normalize(self, requested: Resource) -> Resource:
        """Round a request to what this scheduler will actually grant."""
        raise NotImplementedError

    def validate(self, requested: Resource) -> None:
        if not requested.is_nonnegative() or requested.memory_mb == 0:
            raise AllocationError(f"invalid resource request {requested}")
        if not requested.fits_within(self.max_allocation()):
            raise AllocationError(
                f"requested {requested} exceeds maximum allocation "
                f"{self.max_allocation()}"
            )


class CapacityScheduler(Scheduler):
    """Normalizes with the ``yarn.scheduler.minimum-allocation-*`` keys."""

    def __init__(self, conf: YarnConf) -> None:
        super().__init__(conf, name="capacity")

    def normalize(self, requested: Resource) -> Resource:
        step = Resource(
            int(self.conf.get(MIN_ALLOC_MB)),
            int(self.conf.get(MIN_ALLOC_VCORES)),
        )
        return requested.round_up_to(step)


class FairScheduler(Scheduler):
    """Normalizes with the ``yarn.resource-types.*.increment-allocation``
    keys — *not* the minimum-allocation keys an upstream might assume
    (FLINK-19141)."""

    def __init__(self, conf: YarnConf) -> None:
        super().__init__(conf, name="fair")

    def normalize(self, requested: Resource) -> Resource:
        step = Resource(
            int(self.conf.get(INCREMENT_MB)),
            int(self.conf.get(INCREMENT_VCORES)),
        )
        return requested.round_up_to(step)


def scheduler_for(conf: YarnConf) -> Scheduler:
    kind = conf.scheduler_class
    if kind == "capacity":
        return CapacityScheduler(conf)
    if kind == "fair":
        return FairScheduler(conf)
    raise AllocationError(f"unknown scheduler class {kind!r}")
