"""Mini YARN: schedulers, ResourceManager, NodeManager pmem monitor."""

from repro.yarnlite.configs import (
    INCREMENT_MB,
    INCREMENT_VCORES,
    MAX_ALLOC_MB,
    MAX_ALLOC_VCORES,
    MIN_ALLOC_MB,
    MIN_ALLOC_VCORES,
    NM_MEMORY_MB,
    PMEM_CHECK_ENABLED,
    SCHEDULER_CLASS,
    YARN_CONFIG_KEYS,
    YarnConf,
)
from repro.yarnlite.nodemanager import NodeManager, RunningContainer
from repro.yarnlite.resourcemanager import (
    ApplicationHandle,
    Container,
    ResourceManager,
)
from repro.yarnlite.resources import Resource
from repro.yarnlite.scheduler import (
    CapacityScheduler,
    FairScheduler,
    Scheduler,
    scheduler_for,
)

__all__ = [
    "INCREMENT_MB",
    "INCREMENT_VCORES",
    "MAX_ALLOC_MB",
    "MAX_ALLOC_VCORES",
    "MIN_ALLOC_MB",
    "MIN_ALLOC_VCORES",
    "NM_MEMORY_MB",
    "PMEM_CHECK_ENABLED",
    "SCHEDULER_CLASS",
    "YARN_CONFIG_KEYS",
    "YarnConf",
    "NodeManager",
    "RunningContainer",
    "ApplicationHandle",
    "Container",
    "ResourceManager",
    "Resource",
    "CapacityScheduler",
    "FairScheduler",
    "Scheduler",
    "scheduler_for",
]
