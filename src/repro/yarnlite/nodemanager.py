"""The NodeManager's physical-memory monitor.

Finding 9: monitoring data used for critical actions (here: kill) is a
CSI hazard. FLINK-887 is the paper's example — Flink's JobManager runs
inside a YARN container, and if the JVM heap is not configured with
headroom below the container allocation, the pmem monitor kills it.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.common.events import EventLoop, Process
from repro.errors import ContainerKilledError
from repro.yarnlite.configs import PMEM_CHECK_ENABLED, YarnConf
from repro.yarnlite.resourcemanager import Container

__all__ = ["RunningContainer", "NodeManager"]


@dataclass
class RunningContainer:
    container: Container
    pmem_used_mb: int = 0
    killed: bool = False
    kill_reason: str = ""
    on_kill: Callable[[str], None] | None = None


class NodeManager(Process):
    def __init__(
        self,
        loop: EventLoop,
        conf: YarnConf | None = None,
        *,
        check_interval_ms: int = 3000,
    ) -> None:
        super().__init__(loop, "yarn-nm")
        self.conf = conf or YarnConf()
        self.check_interval_ms = check_interval_ms
        self._running: dict[int, RunningContainer] = {}
        self.kills: list[tuple[int, str]] = []
        self._monitoring = False

    def launch(
        self,
        container: Container,
        on_kill: Callable[[str], None] | None = None,
    ) -> RunningContainer:
        running = RunningContainer(container, on_kill=on_kill)
        self._running[container.container_id] = running
        self._ensure_monitor()
        return running

    def report_usage(self, container_id: int, pmem_used_mb: int) -> None:
        running = self._running.get(container_id)
        if running is None or running.killed:
            raise ContainerKilledError(
                f"container {container_id} is not running"
            )
        running.pmem_used_mb = pmem_used_mb

    def _ensure_monitor(self) -> None:
        if self._monitoring:
            return
        self._monitoring = True
        self.schedule(self.check_interval_ms, self._check, "pmem-check")

    def _check(self) -> None:
        if bool(self.conf.get(PMEM_CHECK_ENABLED)):
            for running in list(self._running.values()):
                limit = running.container.resource.memory_mb
                if running.pmem_used_mb > limit:
                    self._kill(
                        running,
                        f"container is running beyond physical memory "
                        f"limits: {running.pmem_used_mb}MB of {limit}MB used",
                    )
        if self._running:
            self.schedule(self.check_interval_ms, self._check, "pmem-check")
        else:
            self._monitoring = False

    def _kill(self, running: RunningContainer, reason: str) -> None:
        running.killed = True
        running.kill_reason = reason
        self.kills.append((running.container.container_id, reason))
        del self._running[running.container.container_id]
        if running.on_kill is not None:
            running.on_kill(reason)

    def is_running(self, container_id: int) -> bool:
        return container_id in self._running
