"""Resource vectors (memory + vcores) used by the YARN-like substrate."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Resource"]


@dataclass(frozen=True, order=True)
class Resource:
    memory_mb: int
    vcores: int = 1

    def __add__(self, other: "Resource") -> "Resource":
        return Resource(self.memory_mb + other.memory_mb, self.vcores + other.vcores)

    def __sub__(self, other: "Resource") -> "Resource":
        return Resource(self.memory_mb - other.memory_mb, self.vcores - other.vcores)

    def __mul__(self, factor: int) -> "Resource":
        return Resource(self.memory_mb * factor, self.vcores * factor)

    def fits_within(self, other: "Resource") -> bool:
        return self.memory_mb <= other.memory_mb and self.vcores <= other.vcores

    def round_up_to(self, step: "Resource") -> "Resource":
        """Round each dimension up to a multiple of ``step``."""
        return Resource(
            memory_mb=math.ceil(self.memory_mb / step.memory_mb) * step.memory_mb
            if step.memory_mb > 0
            else self.memory_mb,
            vcores=math.ceil(self.vcores / step.vcores) * step.vcores
            if step.vcores > 0
            else self.vcores,
        )

    def is_nonnegative(self) -> bool:
        return self.memory_mb >= 0 and self.vcores >= 0
