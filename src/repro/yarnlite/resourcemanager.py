"""The YARN ResourceManager: asynchronous container allocation.

The control-plane example of the paper (Figure 1, FLINK-12342) hinges
on one property of this component: ``request_containers`` **returns
immediately** and fulfilment arrives later through a callback, taking
``allocation_latency_ms`` of simulated time *per container*. An
upstream that assumes the request is served within its own polling
interval re-requests pending containers and snowballs the queue.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable
from dataclasses import dataclass

from repro.common.events import EventLoop, Process
from repro.errors import SchedulerOverloadError
from repro.faults.core import fault_point
from repro.metrics.registry import MetricsRegistry
from repro.tracing.core import span as trace_span
from repro.yarnlite.configs import YarnConf
from repro.yarnlite.resources import Resource
from repro.yarnlite.scheduler import Scheduler, scheduler_for

__all__ = ["Container", "ApplicationHandle", "ResourceManager"]


@dataclass(frozen=True)
class Container:
    container_id: int
    resource: Resource
    node: str = "node-0"


@dataclass
class ApplicationHandle:
    """One registered application master's view of the RM."""

    app_id: int
    callback: Callable[[list[Container]], None]
    requested_total: int = 0
    allocated_total: int = 0
    #: final status the AM reported at unregistration (None = running).
    #: YARN believes whatever the upstream reports here — the root of
    #: the §6.2.2 observability failures (SPARK-3627, SPARK-10851).
    final_status: str | None = None
    diagnostics: str = ""


class ResourceManager(Process):
    """Single-queue RM with per-container allocation latency."""

    def __init__(
        self,
        loop: EventLoop,
        conf: YarnConf | None = None,
        *,
        cluster_resource: Resource = Resource(1_048_576, 4096),
        allocation_latency_ms: int = 300,
        max_queued_requests: int = 1_000_000,
    ) -> None:
        super().__init__(loop, "yarn-rm")
        self.conf = conf or YarnConf()
        self.scheduler: Scheduler = scheduler_for(self.conf)
        self.cluster_resource = cluster_resource
        self.available = cluster_resource
        self.allocation_latency_ms = allocation_latency_ms
        self.max_queued_requests = max_queued_requests
        self._apps: dict[int, ApplicationHandle] = {}
        self._app_ids = itertools.count(1)
        self._container_ids = itertools.count(1)
        self._queue: list[tuple[int, Resource]] = []
        self._draining = False
        #: total container requests ever received — the overload metric
        #: Figure 1 reports ("4000+ requested").
        self.total_requests_received = 0
        self.total_containers_allocated = 0
        #: exported monitoring surface (scraped by other systems)
        self.metrics = MetricsRegistry(system="yarn-rm")
        self._pending_gauge = self.metrics.gauge(
            "yarn.pending_requests",
            description="container requests queued, not yet allocated",
        )
        self._allocated_counter = self.metrics.counter(
            "yarn.containers_allocated"
        )
        self._available_gauge = self.metrics.gauge(
            "yarn.available_memory_mb"
        )
        self._available_gauge.set(cluster_resource.memory_mb)

    # -- registration ---------------------------------------------------

    def register(
        self, callback: Callable[[list[Container]], None]
    ) -> ApplicationHandle:
        handle = ApplicationHandle(next(self._app_ids), callback)
        self._apps[handle.app_id] = handle
        return handle

    def unregister_application(
        self,
        handle: ApplicationHandle,
        final_status: str,
        diagnostics: str = "",
    ) -> None:
        """The AM reports its final status; the RM records it verbatim."""
        with trace_span(
            "am.rm.report_final_status",
            system="yarn-am",
            peer_system="yarn-rm",
            operation="report_final_status",
            boundary="am->rm",
        ) as sp:
            if sp is not None:
                sp.attributes.update(
                    app_id=handle.app_id,
                    final_status=final_status,
                    diagnostics=diagnostics,
                )
            fault_point("am->rm", "report_final_status")
            if final_status not in ("SUCCEEDED", "FAILED", "KILLED"):
                raise ValueError(f"invalid final status {final_status!r}")
            handle.final_status = final_status
            handle.diagnostics = diagnostics

    def application_report(self, app_id: int) -> ApplicationHandle:
        handle = self._apps.get(app_id)
        if handle is None:
            raise KeyError(f"unknown application {app_id}")
        return handle

    # -- the asynchronous allocate API ------------------------------------

    def request_containers(
        self, handle: ApplicationHandle, count: int, resource: Resource
    ) -> None:
        """Enqueue ``count`` container requests; returns immediately."""
        with trace_span(
            "am.rm.request_containers",
            system="yarn-am",
            peer_system="yarn-rm",
            operation="request_containers",
            boundary="am->rm",
        ) as sp:
            if sp is not None:
                sp.attributes.update(
                    app_id=handle.app_id,
                    count=count,
                    pending=len(self._queue),
                )
            fault_point("am->rm", "request_containers")
            self.scheduler.validate(resource)
            normalized = self.scheduler.normalize(resource)
            if len(self._queue) + count > self.max_queued_requests:
                raise SchedulerOverloadError(
                    f"request queue would exceed {self.max_queued_requests}"
                )
            handle.requested_total += count
            self.total_requests_received += count
            for _ in range(count):
                self._queue.append((handle.app_id, normalized))
            self._pending_gauge.set(len(self._queue))
            self._drain()

    @property
    def pending_requests(self) -> int:
        return len(self._queue)

    def _drain(self) -> None:
        if self._draining or not self._queue:
            return
        self._draining = True
        self.schedule(self.allocation_latency_ms, self._allocate_one, "allocate")

    def _allocate_one(self) -> None:
        self._draining = False
        if not self._queue:
            return
        app_id, resource = self._queue.pop(0)
        handle = self._apps.get(app_id)
        if handle is None:
            self._drain()
            return
        if not resource.fits_within(self.available):
            # out of cluster capacity: leave the request queued and retry.
            self._queue.insert(0, (app_id, resource))
            self.schedule(
                self.allocation_latency_ms, self._allocate_one, "retry"
            )
            self._draining = True
            return
        self.available = self.available - resource
        container = Container(next(self._container_ids), resource)
        handle.allocated_total += 1
        self.total_containers_allocated += 1
        self._pending_gauge.set(len(self._queue))
        self._allocated_counter.increment()
        self._available_gauge.set(self.available.memory_mb)
        handle.callback([container])
        self._drain()

    def release(self, container: Container) -> None:
        self.available = self.available + container.resource
        self._available_gauge.set(self.available.memory_mb)
