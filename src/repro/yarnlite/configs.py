"""YARN configuration surface.

FLINK-19141 (Figure 3) is a management-plane failure rooted here: the
**capacity scheduler** normalizes container requests with the
``yarn.scheduler.minimum-allocation-*`` keys, while the **fair
scheduler** uses the ``yarn.resource-types.*.increment-allocation``
keys. The same upstream arithmetic is therefore right for one scheduler
and wrong for the other — "configuration values are wrong in a specific
CSI context" (Table 7, inconsistent context).
"""

from __future__ import annotations

from repro.common.config import ConfigKey, Configuration, parse_bool, parse_int

__all__ = [
    "YarnConf",
    "YARN_CONFIG_KEYS",
    "MIN_ALLOC_MB",
    "MIN_ALLOC_VCORES",
    "MAX_ALLOC_MB",
    "MAX_ALLOC_VCORES",
    "INCREMENT_MB",
    "INCREMENT_VCORES",
    "SCHEDULER_CLASS",
    "PMEM_CHECK_ENABLED",
    "NM_MEMORY_MB",
]

MIN_ALLOC_MB = "yarn.scheduler.minimum-allocation-mb"
MIN_ALLOC_VCORES = "yarn.scheduler.minimum-allocation-vcores"
MAX_ALLOC_MB = "yarn.scheduler.maximum-allocation-mb"
MAX_ALLOC_VCORES = "yarn.scheduler.maximum-allocation-vcores"
INCREMENT_MB = "yarn.resource-types.memory-mb.increment-allocation"
INCREMENT_VCORES = "yarn.resource-types.vcores.increment-allocation"
SCHEDULER_CLASS = "yarn.resourcemanager.scheduler.class"
PMEM_CHECK_ENABLED = "yarn.nodemanager.pmem-check-enabled"
NM_MEMORY_MB = "yarn.nodemanager.resource.memory-mb"

YARN_CONFIG_KEYS: list[ConfigKey] = [
    ConfigKey(MIN_ALLOC_MB, default=1024, parser=parse_int,
              doc="Capacity scheduler: requests round up to a multiple."),
    ConfigKey(MIN_ALLOC_VCORES, default=1, parser=parse_int),
    ConfigKey(MAX_ALLOC_MB, default=8192, parser=parse_int),
    ConfigKey(MAX_ALLOC_VCORES, default=4, parser=parse_int),
    ConfigKey(INCREMENT_MB, default=1024, parser=parse_int,
              doc="Fair scheduler: requests round up to a multiple of "
              "this instead of the minimum-allocation key."),
    ConfigKey(INCREMENT_VCORES, default=1, parser=parse_int),
    ConfigKey(SCHEDULER_CLASS, default="capacity",
              doc="'capacity' or 'fair'."),
    ConfigKey(PMEM_CHECK_ENABLED, default=True, parser=parse_bool,
              doc="Whether the NodeManager kills containers whose "
              "physical memory exceeds their allocation (FLINK-887)."),
    ConfigKey(NM_MEMORY_MB, default=8192, parser=parse_int),
    ConfigKey("yarn.resourcemanager.am.max-attempts", default=2,
              parser=parse_int),
    ConfigKey("yarn.nodemanager.vmem-pmem-ratio", default="2.1"),
    ConfigKey("yarn.nodemanager.pmem-check-interval-ms", default=3000,
              parser=parse_int),
]


class YarnConf(Configuration):
    def __init__(self) -> None:
        super().__init__(system="yarn")
        self.declare_all(YARN_CONFIG_KEYS)

    @property
    def scheduler_class(self) -> str:
        return str(self.get(SCHEDULER_CLASS)).lower()
