"""Recursive-descent parser for the shared SQL subset.

Grammar (case-insensitive keywords)::

    statement   := create | drop | insert | select
    create      := CREATE TABLE [IF NOT EXISTS] ident
                   '(' coldef (',' coldef)* ')'
                   [STORED AS ident] [TBLPROPERTIES '(' kv (',' kv)* ')']
    drop        := DROP TABLE [IF EXISTS] ident
    insert      := INSERT (INTO | OVERWRITE TABLE?) ident
                   VALUES tuple (',' tuple)*
    select      := SELECT proj (',' proj)* FROM ident [WHERE comparison]
    proj        := '*' | expr
    expr        := literal | typed-literal | cast | function | column
"""

from __future__ import annotations

import functools

from repro.errors import ParseError
from repro.sql.ast import (
    ColumnDef,
    ColumnRef,
    Comparison,
    CreateTable,
    DropTable,
    Expression,
    FunctionCall,
    Insert,
    Literal,
    Select,
    Star,
    Statement,
    TypedLiteral,
)
from repro.sql.lexer import Token, TokenType, tokenize

__all__ = ["parse_statement"]

_TYPE_KEYWORDS = {"DATE", "TIMESTAMP", "TIMESTAMP_NTZ", "INTERVAL", "BINARY", "X"}


@functools.lru_cache(maxsize=4096)
def parse_statement(sql: str) -> Statement:
    """Parse one statement. Memoized: the AST is built entirely from
    frozen dataclasses and tuples, so callers share parses — the
    cross-test matrix replays the same CREATE/INSERT/SELECT texts across
    every plan and format."""
    return _Parser(tokenize(sql), sql).parse()


class _Parser:
    def __init__(self, tokens: list[Token], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.pos = 0

    # -- token plumbing --------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def check_keyword(self, keyword: str) -> bool:
        token = self.peek()
        return token.type is TokenType.IDENT and token.upper() == keyword

    def accept_keyword(self, keyword: str) -> bool:
        if self.check_keyword(keyword):
            self.advance()
            return True
        return False

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            raise ParseError(
                f"expected {keyword} at {self.peek().position} in {self.source!r}"
            )

    def accept_symbol(self, symbol: str) -> bool:
        token = self.peek()
        if token.type is TokenType.SYMBOL and token.text == symbol:
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            raise ParseError(
                f"expected {symbol!r} at {self.peek().position} in {self.source!r}"
            )

    def expect_ident(self) -> str:
        token = self.peek()
        if token.type is not TokenType.IDENT:
            raise ParseError(
                f"expected identifier at {token.position} in {self.source!r}"
            )
        return self.advance().text

    # -- statements -------------------------------------------------------

    def parse(self) -> Statement:
        if self.check_keyword("CREATE"):
            statement = self._create()
        elif self.check_keyword("DROP"):
            statement = self._drop()
        elif self.check_keyword("INSERT"):
            statement = self._insert()
        elif self.check_keyword("SELECT"):
            statement = self._select()
        else:
            raise ParseError(f"unsupported statement: {self.source!r}")
        if self.peek().type is not TokenType.EOF:
            raise ParseError(
                f"trailing input at {self.peek().position} in {self.source!r}"
            )
        return statement

    def _create(self) -> CreateTable:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        table = self.expect_ident()
        self.expect_symbol("(")
        columns = [self._column_def()]
        while self.accept_symbol(","):
            columns.append(self._column_def())
        self.expect_symbol(")")
        partition_columns: list[ColumnDef] = []
        if self.accept_keyword("PARTITIONED"):
            self.expect_keyword("BY")
            self.expect_symbol("(")
            partition_columns.append(self._column_def())
            while self.accept_symbol(","):
                partition_columns.append(self._column_def())
            self.expect_symbol(")")
        stored_as = None
        datasource = False
        if self.accept_keyword("STORED"):
            self.expect_keyword("AS")
            stored_as = self.expect_ident().lower()
        elif self.accept_keyword("USING"):
            stored_as = self.expect_ident().lower()
            datasource = True
        properties: list[tuple[str, str]] = []
        if self.accept_keyword("TBLPROPERTIES"):
            self.expect_symbol("(")
            properties.append(self._property())
            while self.accept_symbol(","):
                properties.append(self._property())
            self.expect_symbol(")")
        return CreateTable(
            table=table,
            columns=tuple(columns),
            stored_as=stored_as,
            if_not_exists=if_not_exists,
            properties=tuple(properties),
            datasource=datasource,
            partition_columns=tuple(partition_columns),
        )

    def _property(self) -> tuple[str, str]:
        key = self.advance().text
        self.expect_symbol("=")
        value = self.advance().text
        return key, value

    def _column_def(self) -> ColumnDef:
        name = self.expect_ident()
        type_text = self._type_text()
        return ColumnDef(name, type_text)

    def _type_text(self) -> str:
        """Consume a type expression, tracking <...> and (...) nesting."""
        parts: list[str] = [self.expect_ident()]
        depth = 0
        while True:
            token = self.peek()
            if token.type is TokenType.SYMBOL and token.text in ("(", "<"):
                depth += 1
                parts.append(self.advance().text)
            elif token.type is TokenType.SYMBOL and token.text in (")", ">"):
                if depth == 0:
                    break
                depth -= 1
                parts.append(self.advance().text)
            elif depth > 0:
                parts.append(self.advance().text)
            else:
                break
        return "".join(parts)

    def _drop(self) -> DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return DropTable(self.expect_ident(), if_exists)

    def _insert(self) -> Insert:
        self.expect_keyword("INSERT")
        overwrite = False
        if self.accept_keyword("OVERWRITE"):
            overwrite = True
            self.accept_keyword("TABLE")
        else:
            self.expect_keyword("INTO")
            self.accept_keyword("TABLE")
        table = self.expect_ident()
        partition_spec: list[tuple[str, Expression]] = []
        if self.accept_keyword("PARTITION"):
            self.expect_symbol("(")
            partition_spec.append(self._partition_entry())
            while self.accept_symbol(","):
                partition_spec.append(self._partition_entry())
            self.expect_symbol(")")
        self.expect_keyword("VALUES")
        rows = [self._value_tuple()]
        while self.accept_symbol(","):
            rows.append(self._value_tuple())
        return Insert(
            table=table,
            rows=tuple(rows),
            overwrite=overwrite,
            partition_spec=tuple(partition_spec),
        )

    def _partition_entry(self) -> tuple[str, Expression]:
        name = self.expect_ident()
        self.expect_symbol("=")
        return name, self._expression()

    def _value_tuple(self) -> tuple[Expression, ...]:
        self.expect_symbol("(")
        values = [self._expression()]
        while self.accept_symbol(","):
            values.append(self._expression())
        self.expect_symbol(")")
        return tuple(values)

    def _select(self) -> Select:
        self.expect_keyword("SELECT")
        projections = [self._projection()]
        while self.accept_symbol(","):
            projections.append(self._projection())
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = None
        if self.accept_keyword("WHERE"):
            where = self._comparison()
        return Select(table=table, projections=tuple(projections), where=where)

    def _projection(self) -> Expression:
        if self.accept_symbol("*"):
            return Star()
        return self._expression()

    def _comparison(self) -> Comparison:
        left = self._expression()
        token = self.peek()
        if token.type is not TokenType.SYMBOL or token.text not in (
            "=", "<", ">", "<=", ">=", "<>", "!=",
        ):
            raise ParseError(f"expected comparison operator in {self.source!r}")
        op = self.advance().text
        right = self._expression()
        return Comparison(op, left, right)

    # -- expressions --------------------------------------------------------

    def _expression(self) -> Expression:
        token = self.peek()
        if token.type is TokenType.SYMBOL and token.text == "-":
            self.advance()
            number = self.peek()
            if number.type is not TokenType.NUMBER:
                raise ParseError(f"expected number after '-' in {self.source!r}")
            self.advance()
            return Literal(None, "-" + number.text)
        if token.type is TokenType.NUMBER:
            self.advance()
            return Literal(None, token.text)
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.text, repr(token.text))
        if token.type is TokenType.IDENT:
            upper = token.upper()
            if upper == "NULL":
                self.advance()
                return Literal(None, "NULL")
            if upper in ("TRUE", "FALSE"):
                self.advance()
                return Literal(upper == "TRUE", upper)
            if upper == "CAST":
                return self._cast()
            if upper in _TYPE_KEYWORDS and self._next_is_string():
                self.advance()
                operand = self._expression()
                return TypedLiteral(upper.lower(), operand)
            if self._next_is_symbol("("):
                return self._function_call()
            self.advance()
            return ColumnRef(token.text)
        raise ParseError(
            f"unexpected token {token.text!r} at {token.position}"
            f" in {self.source!r}"
        )

    def _next_is_string(self) -> bool:
        return self.tokens[self.pos + 1].type is TokenType.STRING

    def _next_is_symbol(self, symbol: str) -> bool:
        nxt = self.tokens[self.pos + 1]
        return nxt.type is TokenType.SYMBOL and nxt.text == symbol

    def _cast(self) -> TypedLiteral:
        self.expect_keyword("CAST")
        self.expect_symbol("(")
        operand = self._expression()
        self.expect_keyword("AS")
        type_text = self._type_text()
        self.expect_symbol(")")
        return TypedLiteral(type_text.lower(), operand)

    def _function_call(self) -> FunctionCall:
        name = self.expect_ident().lower()
        self.expect_symbol("(")
        args: list[Expression] = []
        if not self.accept_symbol(")"):
            args.append(self._expression())
            while self.accept_symbol(","):
                args.append(self._expression())
            self.expect_symbol(")")
        return FunctionCall(name, tuple(args))
