"""Tokenizer for the SQL subset shared by SparkSQL and HiveQL.

One lexer serves both dialects; all divergence between the engines is
semantic (type coercion, identifier case, error behaviour), never
syntactic, which mirrors how the paper's §8 harness drives both systems
with the same statements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError

__all__ = ["TokenType", "Token", "tokenize"]


class TokenType(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def upper(self) -> str:
        return self.text.upper()


_SYMBOLS = (
    "<=", ">=", "<>", "!=", "(", ")", ",", "*", "=", "<", ">", ".", "-",
    "+", ":",
)


def tokenize(sql: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        char = sql[i]
        if char.isspace():
            i += 1
            continue
        if char == "'":
            end = i + 1
            chunks: list[str] = []
            while end < length:
                if sql[end] == "'" and end + 1 < length and sql[end + 1] == "'":
                    chunks.append("'")
                    end += 2
                    continue
                if sql[end] == "'":
                    break
                chunks.append(sql[end])
                end += 1
            if end >= length:
                raise ParseError(f"unterminated string literal at {i} in {sql!r}")
            tokens.append(Token(TokenType.STRING, "".join(chunks), i))
            i = end + 1
            continue
        if char == "`":
            end = sql.find("`", i + 1)
            if end == -1:
                raise ParseError(f"unterminated quoted identifier at {i}")
            tokens.append(Token(TokenType.IDENT, sql[i + 1 : end], i))
            i = end + 1
            continue
        if char.isdigit() or (
            char == "." and i + 1 < length and sql[i + 1].isdigit()
        ):
            end = i
            seen_dot = False
            seen_exp = False
            while end < length:
                c = sql[end]
                if c.isdigit():
                    end += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    end += 1
                elif c in "eE" and not seen_exp and end > i:
                    nxt = sql[end + 1] if end + 1 < length else ""
                    if nxt.isdigit() or nxt in "+-":
                        seen_exp = True
                        end += 2 if nxt in "+-" else 1
                    else:
                        break
                else:
                    break
            text = sql[i:end]
            # trailing type suffixes: 1Y (tinyint), 1S, 1L, 1.0D, 1.0F, 1BD
            if end < length and sql[end : end + 2].upper() == "BD":
                text += sql[end : end + 2]
                end += 2
            elif end < length and sql[end].upper() in "YSLDF":
                text += sql[end]
                end += 1
            tokens.append(Token(TokenType.NUMBER, text, i))
            i = end
            continue
        if char.isalpha() or char == "_":
            end = i
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            tokens.append(Token(TokenType.IDENT, sql[i:end], i))
            i = end
            continue
        for symbol in _SYMBOLS:
            if sql.startswith(symbol, i):
                tokens.append(Token(TokenType.SYMBOL, symbol, i))
                i += len(symbol)
                break
        else:
            raise ParseError(f"unexpected character {char!r} at {i} in {sql!r}")
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens
