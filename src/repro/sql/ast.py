"""Abstract syntax for the shared SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Statement",
    "CreateTable",
    "DropTable",
    "Insert",
    "Select",
    "Expression",
    "Literal",
    "TypedLiteral",
    "ColumnRef",
    "Star",
    "FunctionCall",
    "Comparison",
    "ColumnDef",
]


class Statement:
    """Base class of parsed statements."""


class Expression:
    """Base class of parsed expressions."""


@dataclass(frozen=True)
class Literal(Expression):
    """An untyped literal: number, string, boolean, or NULL."""

    value: object
    #: raw source text, kept so engines can apply their own numeric
    #: interpretation rules (e.g. decimal vs double defaults).
    text: str = ""


@dataclass(frozen=True)
class TypedLiteral(Expression):
    """``DATE '2020-01-01'``, ``TIMESTAMP '...'``, ``CAST(x AS t)``."""

    type_name: str
    operand: Expression


@dataclass(frozen=True)
class ColumnRef(Expression):
    name: str


@dataclass(frozen=True)
class Star(Expression):
    pass


@dataclass(frozen=True)
class FunctionCall(Expression):
    """``array(...)``, ``map(...)``, ``named_struct(...)`` and friends."""

    name: str
    args: tuple[Expression, ...] = ()


@dataclass(frozen=True)
class Comparison(Expression):
    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_text: str


@dataclass(frozen=True)
class CreateTable(Statement):
    table: str
    columns: tuple[ColumnDef, ...]
    stored_as: str | None = None
    if_not_exists: bool = False
    properties: tuple[tuple[str, str], ...] = ()
    #: True for ``CREATE TABLE ... USING fmt`` (a Spark datasource
    #: table); False for ``STORED AS fmt`` (a Hive-serde table). The two
    #: paths keep schema metadata differently — see
    #: :mod:`repro.connectors.spark_hive`.
    datasource: bool = False
    #: ``PARTITIONED BY (...)`` columns, if any.
    partition_columns: tuple[ColumnDef, ...] = ()


@dataclass(frozen=True)
class DropTable(Statement):
    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class Insert(Statement):
    table: str
    rows: tuple[tuple[Expression, ...], ...]
    overwrite: bool = False
    #: ``PARTITION (name=literal, ...)`` target, if any.
    partition_spec: tuple[tuple[str, Expression], ...] = ()


@dataclass(frozen=True)
class Select(Statement):
    table: str
    projections: tuple[Expression, ...] = field(default=(Star(),))
    where: Comparison | None = None
