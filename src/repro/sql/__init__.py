"""Shared SQL front end (lexer, parser, literal evaluation)."""

from repro.sql.ast import (
    ColumnDef,
    ColumnRef,
    Comparison,
    CreateTable,
    DropTable,
    Expression,
    FunctionCall,
    Insert,
    Literal,
    Select,
    Star,
    Statement,
    TypedLiteral,
)
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.literals import DialectOptions, LiteralEvaluator, TypedValue
from repro.sql.parser import parse_statement

__all__ = [
    "ColumnDef",
    "ColumnRef",
    "Comparison",
    "CreateTable",
    "DropTable",
    "Expression",
    "FunctionCall",
    "Insert",
    "Literal",
    "Select",
    "Star",
    "Statement",
    "TypedLiteral",
    "Token",
    "TokenType",
    "tokenize",
    "DialectOptions",
    "LiteralEvaluator",
    "TypedValue",
    "parse_statement",
]
