"""A conf- and catalog-aware plan cache shared by both engines.

The §8 harness replays a few hundred distinct statement texts hundreds
of thousands of times; parsing was memoized in an earlier pass, but
analysis (catalog resolution, literal evaluation, cast dispatch,
serialization) still ran per call. This cache closes that gap — and
because the *analysis layer is exactly the paper's discrepancy surface*,
it is deliberately paranoid about the two ways a cached plan could go
stale:

* **Configuration.** Discrepancies #5/#8–#13 exist only under specific
  session configuration; a cache that ignored conf would erase them.
  Every entry is keyed on a caller-supplied *conf fingerprint* (the
  settings the engine's analysis actually reads).
* **Catalog state.** The metastore is shared mutable state between two
  independent engines — precisely the cross-system shape the paper
  studies, and the OpenStack failure studies in PAPERS.md show stale
  shared state dominating that bug class. Every entry is keyed on a
  *dependency fingerprint*: the frozen catalog entries (``Table``
  dataclasses, or ``None`` for absent tables) the plan resolved against.
  The metastore's monotonically increasing ``catalog_version`` makes the
  common case cheap — while the version is unchanged since the entry was
  stored or last validated, the dependencies provably cannot have moved
  and the fingerprint check is skipped.

A DROP + CREATE that rebuilds an *identical* table re-validates instead
of recompiling (the fingerprint still matches), and entries are
*state-variant aware*: one statement text holds a plan per distinct
dependency state it was compiled under, so the cross-test pattern —
``SELECT * FROM ct`` replayed while ``ct`` cycles through dozens of
column types — hits on every state it has seen before instead of
thrashing a single slot. Serving a stale plan is structurally
impossible: a plan is only ever served for the exact catalog state it
was compiled against.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import dataclass, field

__all__ = ["PlanCache", "CacheStats", "PreparedFailure"]

#: Default per-session bound on cached *plans* (state variants, summed
#: over all statement texts). The cross-test corpus compiles a couple of
#: thousand distinct (text, conf, deps) shapes; adversarial corpora with
#: unbounded distinct statements evict oldest-first instead of growing.
DEFAULT_MAX_ENTRIES = 4096


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters for one cache."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass(frozen=True)
class PreparedFailure:
    """A statement whose *analysis* failed deterministically.

    Analysis errors (arity mismatch, ANSI cast overflow, strict literal
    parse failure, unresolvable table) are a function of the statement
    text, the configuration and the dependency fingerprint — exactly the
    cache key — so the failure itself is cacheable. ``execute`` re-raises
    the original exception object: type and message, which is all the
    harness observes, replay identically.
    """

    error: Exception

    def execute(self, engine: object) -> object:
        del engine
        raise self.error


@dataclass
class _Entry:
    """All cached plans for one (text, conf fp) pair.

    ``dep_keys`` are the dependency keys the statement resolves against —
    a function of the statement text, discovered at first compile.
    ``variants`` maps each *resolved dependency state* (the tuple of
    frozen catalog entries) to the plan compiled under that state.
    ``validated_version``/``last_state`` make the common case cheap: while
    the catalog version has not moved since the last lookup, the
    dependencies provably cannot have changed and resolution is skipped.
    """

    dep_keys: tuple[Hashable, ...]
    variants: OrderedDict
    validated_version: int = -1
    last_state: tuple | None = None


@dataclass
class PlanCache:
    """Bounded LRU of compiled plans keyed (text, conf fp, dep state).

    ``lookup``/``store`` take the statement text, the conf fingerprint,
    the current catalog version, and a ``resolve`` callable mapping a
    dependency key (e.g. ``("default", "ct")``) to its current catalog
    state. Dependency keys are *discovered at compile time* and recorded
    on the entry; lookups re-resolve them only when the catalog version
    has moved, then select the plan variant matching the current state.
    ``max_entries`` bounds the total number of cached plans (variants),
    evicting whole least-recently-used statements.
    """

    max_entries: int = DEFAULT_MAX_ENTRIES
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict)
    _size: int = 0

    def __len__(self) -> int:
        return self._size

    def lookup(
        self,
        text: str,
        conf_fp: Hashable,
        catalog_version: int,
        resolve: Callable[[Hashable], object],
    ) -> object | None:
        """Return the cached plan for the *current* catalog state.

        ``None`` means miss: either the statement was never compiled
        under this conf, or never against the catalog state it resolves
        to right now (counted as an invalidation — the state moved away
        from every cached variant).
        """
        key = (text, conf_fp)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if (
            entry.validated_version == catalog_version
            and entry.last_state is not None
        ):
            state = entry.last_state
        else:
            state = tuple(resolve(dep_key) for dep_key in entry.dep_keys)
        plan = entry.variants.get(state)
        if plan is None:
            # the catalog moved to a state this text was never compiled
            # under: never serve a stale variant
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        entry.validated_version = catalog_version
        entry.last_state = state
        entry.variants.move_to_end(state)
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return plan

    def store(
        self,
        text: str,
        conf_fp: Hashable,
        catalog_version: int,
        deps: tuple[tuple[Hashable, object], ...],
        plan: object,
    ) -> object:
        """Insert a freshly compiled plan; returns the plan unchanged."""
        key = (text, conf_fp)
        dep_keys = tuple(dep_key for dep_key, _ in deps)
        state = tuple(fingerprint for _, fingerprint in deps)
        entry = self._entries.get(key)
        if entry is None or entry.dep_keys != dep_keys:
            if entry is not None:
                self._size -= len(entry.variants)
            entry = _Entry(dep_keys=dep_keys, variants=OrderedDict())
            self._entries[key] = entry
        if state not in entry.variants:
            self._size += 1
        entry.variants[state] = plan
        entry.variants.move_to_end(state)
        entry.validated_version = catalog_version
        entry.last_state = state
        self._entries.move_to_end(key)
        while self._size > self.max_entries and len(self._entries) > 1:
            _, oldest = self._entries.popitem(last=False)
            self._size -= len(oldest.variants)
            self.stats.evictions += len(oldest.variants)
        return plan

    def clear(self) -> None:
        self._entries.clear()
        self._size = 0
