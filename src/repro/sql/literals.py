"""Literal and expression evaluation with per-dialect policies.

Both engines parse the same syntax, but what a literal *means* differs:
what type an unsuffixed fractional literal gets, whether a malformed
``DATE`` literal raises or becomes NULL (discrepancy #9 / SPARK-40525),
how an out-of-range suffix literal is treated. Those knobs live in
:class:`DialectOptions` so the engines disagree in exactly the
documented ways.
"""

from __future__ import annotations

import datetime
import decimal
from collections.abc import Callable
from dataclasses import dataclass

from repro.common.types import (
    ArrayType,
    BinaryType,
    BooleanType,
    ByteType,
    DataType,
    DateType,
    DecimalType,
    DoubleType,
    FloatType,
    IntegerType,
    LongType,
    NullType,
    ShortType,
    StringType,
    StructField,
    StructType,
    TimestampNTZType,
    TimestampType,
    MapType,
    parse_type,
)
from repro.errors import AnalysisException, ParseError
from repro.sql.ast import (
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    TypedLiteral,
)

__all__ = ["DialectOptions", "TypedValue", "LiteralEvaluator"]


@dataclass(frozen=True)
class TypedValue:
    value: object
    data_type: DataType


#: signature: cast(value, source_type, target_type) -> value
CastFn = Callable[[object, DataType, DataType], object]


@dataclass(frozen=True)
class DialectOptions:
    """Per-engine literal semantics."""

    name: str
    #: type given to unsuffixed fractional literals: "decimal" or "double"
    fractional_literal: str = "decimal"
    #: malformed DATE/TIMESTAMP literal: raise (True) or yield NULL (False)
    strict_datetime_literals: bool = True
    #: cast function used for CAST(...) expressions
    cast_fn: CastFn | None = None


class LiteralEvaluator:
    """Evaluate constant expressions into :class:`TypedValue`."""

    def __init__(self, options: DialectOptions) -> None:
        self.options = options

    def evaluate(self, expr: Expression) -> TypedValue:
        if isinstance(expr, Literal):
            return self._literal(expr)
        if isinstance(expr, TypedLiteral):
            return self._typed_literal(expr)
        if isinstance(expr, FunctionCall):
            return self._function(expr)
        if isinstance(expr, ColumnRef):
            raise AnalysisException(
                f"column reference {expr.name!r} is not a constant"
            )
        raise AnalysisException(f"cannot evaluate expression {expr!r}")

    # -- plain literals ---------------------------------------------------

    def _literal(self, expr: Literal) -> TypedValue:
        if expr.text == "NULL":
            return TypedValue(None, NullType())
        if isinstance(expr.value, bool):
            return TypedValue(expr.value, BooleanType())
        if isinstance(expr.value, str):
            return TypedValue(expr.value, StringType())
        return self._number(expr.text)

    def _number(self, text: str) -> TypedValue:
        upper = text.upper()
        if upper.endswith("BD"):
            return self._decimal(text[:-2])
        if upper.endswith("Y"):
            return self._suffixed_int(text[:-1], ByteType())
        if upper.endswith("S") and "E" not in upper[:-1]:
            return self._suffixed_int(text[:-1], ShortType())
        if upper.endswith("L"):
            return self._suffixed_int(text[:-1], LongType())
        if upper.endswith("D") and not upper[:-1].endswith("B"):
            return TypedValue(float(text[:-1]), DoubleType())
        if upper.endswith("F"):
            return TypedValue(float(text[:-1]), FloatType())
        if "." in text or "E" in upper:
            if "E" in upper or self.options.fractional_literal == "double":
                return TypedValue(float(text), DoubleType())
            return self._decimal(text)
        value = int(text)
        if IntegerType().accepts(value):
            return TypedValue(value, IntegerType())
        if LongType().accepts(value):
            return TypedValue(value, LongType())
        return self._decimal(text)

    def _suffixed_int(self, digits: str, dtype: DataType) -> TypedValue:
        value = int(digits)
        if not dtype.accepts(value):
            raise ParseError(
                f"numeric literal {digits} out of range for"
                f" {dtype.simple_string()}"
            )
        return TypedValue(value, dtype)

    @staticmethod
    def _decimal(text: str) -> TypedValue:
        value = decimal.Decimal(text)
        digits = value.as_tuple()
        scale = max(0, -digits.exponent)
        precision = max(len(digits.digits), scale)
        precision = min(precision, DecimalType.MAX_PRECISION)
        scale = min(scale, precision)
        return TypedValue(value, DecimalType(precision, scale))

    # -- typed literals -----------------------------------------------------

    def _typed_literal(self, expr: TypedLiteral) -> TypedValue:
        operand = self.evaluate(expr.operand)
        type_name = expr.type_name
        if type_name == "date":
            return self._datetime_literal(operand, DateType(), _parse_date)
        if type_name == "timestamp":
            return self._datetime_literal(
                operand, TimestampType(), _parse_timestamp
            )
        if type_name == "timestamp_ntz":
            return self._datetime_literal(
                operand, TimestampNTZType(), _parse_timestamp
            )
        if type_name == "x":
            return TypedValue(bytes.fromhex(str(operand.value)), BinaryType())
        if type_name == "binary":
            return TypedValue(
                str(operand.value).encode("utf-8"), BinaryType()
            )
        # everything else is CAST(x AS type)
        target = parse_type(type_name)
        if self.options.cast_fn is None:
            raise AnalysisException(
                f"{self.options.name}: CAST not supported in this context"
            )
        value = self.options.cast_fn(operand.value, operand.data_type, target)
        return TypedValue(value, target)

    def _datetime_literal(self, operand, dtype, parser) -> TypedValue:
        try:
            return TypedValue(parser(str(operand.value)), dtype)
        except ValueError as exc:
            if self.options.strict_datetime_literals:
                raise AnalysisException(
                    f"invalid {dtype.name} literal {operand.value!r}: {exc}"
                ) from exc
            return TypedValue(None, dtype)

    # -- constructor functions -----------------------------------------------

    def _function(self, expr: FunctionCall) -> TypedValue:
        if expr.name == "array":
            items = [self.evaluate(a) for a in expr.args]
            element_type = _common_type([i.data_type for i in items])
            return TypedValue(
                [i.value for i in items], ArrayType(element_type)
            )
        if expr.name == "map":
            if len(expr.args) % 2 != 0:
                raise AnalysisException("map() needs an even argument count")
            keys = [self.evaluate(a) for a in expr.args[0::2]]
            values = [self.evaluate(a) for a in expr.args[1::2]]
            key_type = _common_type([k.data_type for k in keys])
            value_type = _common_type([v.data_type for v in values])
            if any(k.value is None for k in keys):
                raise AnalysisException("map keys cannot be NULL")
            return TypedValue(
                {k.value: v.value for k, v in zip(keys, values)},
                MapType(key_type, value_type),
            )
        if expr.name == "named_struct":
            if len(expr.args) % 2 != 0:
                raise AnalysisException(
                    "named_struct() needs an even argument count"
                )
            names = [self.evaluate(a) for a in expr.args[0::2]]
            values = [self.evaluate(a) for a in expr.args[1::2]]
            fields = tuple(
                StructField(str(n.value), v.data_type)
                for n, v in zip(names, values)
            )
            return TypedValue([v.value for v in values], StructType(fields))
        if expr.name in ("float", "double") and len(expr.args) == 1:
            inner = self.evaluate(expr.args[0])
            dtype = FloatType() if expr.name == "float" else DoubleType()
            return TypedValue(_special_float(inner.value), dtype)
        raise AnalysisException(f"unknown function {expr.name!r}")


def _special_float(value: object) -> float | None:
    if value is None:
        return None
    text = str(value).strip().lower()
    if text in ("nan",):
        return float("nan")
    if text in ("inf", "infinity", "+infinity"):
        return float("inf")
    if text in ("-inf", "-infinity"):
        return float("-inf")
    return float(text)


def _parse_date(text: str) -> datetime.date:
    return datetime.date.fromisoformat(text.strip())


def _parse_timestamp(text: str) -> datetime.datetime:
    return datetime.datetime.fromisoformat(text.strip())


def _common_type(types: list[DataType]) -> DataType:
    """Least-surprise common type for constructor functions."""
    concrete = [t for t in types if not isinstance(t, NullType)]
    if not concrete:
        # all-NULL stays the null type: it is assignable to anything
        return NullType()
    first = concrete[0]
    for other in concrete[1:]:
        if other != first:
            # widen integrals, else fall back to string
            order = ["tinyint", "smallint", "int", "bigint"]
            if first.name in order and other.name in order:
                widest = max(first, other, key=lambda t: order.index(t.name))
                first = widest
            else:
                return StringType()
    return first
