"""Change analysis for cross-system interactions (§10).

    "Many CSI issues are introduced during software evolution. ... New
    techniques are needed for reasoning about impacts of changes
    regarding cross-system interactions."

Two static analyses over the pieces where the studied failures live:

* :func:`lattice_diff` — compare two versions of a storage format's
  physical type lattice over a type corpus and classify every change
  (a gap introduced, a collapse changed, ...). Catches the
  SPARK-21150-style regressions where an upgrade silently changes what
  survives a round trip.
* :func:`reader_gaps` — for one format, find the logical types whose
  physical representation the engine's transformer layer cannot convert
  back. Run against the Avro lattice this reports BYTE/SHORT — i.e. it
  would have flagged SPARK-39075 before release.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import parse_type
from repro.connectors.transformers import transformer_for
from repro.errors import ReproError
from repro.formats.base import Serializer

__all__ = [
    "DEFAULT_TYPE_CORPUS",
    "LatticeChange",
    "ReaderGap",
    "lattice_signature",
    "lattice_diff",
    "upgrade_risks",
    "reader_gaps",
]

#: representative corpus covering every atomic family plus nesting
DEFAULT_TYPE_CORPUS: tuple[str, ...] = (
    "boolean",
    "tinyint",
    "smallint",
    "int",
    "bigint",
    "float",
    "double",
    "decimal(10,2)",
    "decimal(38,18)",
    "string",
    "char(5)",
    "varchar(10)",
    "binary",
    "date",
    "timestamp",
    "timestamp_ntz",
    "array<int>",
    "array<tinyint>",
    "map<string,int>",
    "map<int,string>",
    "struct<a:int,b:string>",
    "struct<Aa:smallint>",
)

UNSUPPORTED = "<unsupported>"


def lattice_signature(
    serializer: Serializer, corpus: tuple[str, ...] = DEFAULT_TYPE_CORPUS
) -> dict[str, str]:
    """``logical type -> physical type`` (or the unsupported marker)."""
    signature: dict[str, str] = {}
    for type_text in corpus:
        logical = parse_type(type_text)
        try:
            physical = serializer.physical_type(logical)
        except ReproError:
            signature[type_text] = UNSUPPORTED
        else:
            signature[type_text] = physical.simple_string()
    return signature


@dataclass(frozen=True)
class LatticeChange:
    type_text: str
    kind: str  # gap_introduced | gap_removed | collapse_changed |
    #            collapse_introduced | collapse_removed
    old_physical: str
    new_physical: str

    @property
    def risky(self) -> bool:
        """Changes that can break an already-deployed peer.

        Introducing a gap breaks writers; introducing or changing a
        collapse changes what readers get back. Removing a gap or a
        collapse only widens what round-trips, which is backward safe
        for data written from now on — but note files written *before*
        still carry the old physical types.
        """
        return self.kind in (
            "gap_introduced",
            "collapse_introduced",
            "collapse_changed",
        )

    def render(self) -> str:
        return (
            f"{self.type_text}: {self.old_physical} -> {self.new_physical} "
            f"({self.kind}{', RISK' if self.risky else ''})"
        )


def lattice_diff(
    old: Serializer,
    new: Serializer,
    corpus: tuple[str, ...] = DEFAULT_TYPE_CORPUS,
) -> list[LatticeChange]:
    """Classify every behavioural difference between two lattices."""
    old_signature = lattice_signature(old, corpus)
    new_signature = lattice_signature(new, corpus)
    changes: list[LatticeChange] = []
    for type_text in corpus:
        before = old_signature[type_text]
        after = new_signature[type_text]
        if before == after:
            continue
        if after == UNSUPPORTED:
            kind = "gap_introduced"
        elif before == UNSUPPORTED:
            kind = "gap_removed"
        elif before == type_text or before == parse_type(
            type_text
        ).simple_string():
            kind = "collapse_introduced"
        elif after == parse_type(type_text).simple_string():
            kind = "collapse_removed"
        else:
            kind = "collapse_changed"
        changes.append(LatticeChange(type_text, kind, before, after))
    return changes


def upgrade_risks(
    old: Serializer,
    new: Serializer,
    corpus: tuple[str, ...] = DEFAULT_TYPE_CORPUS,
) -> list[LatticeChange]:
    """Only the changes that can break a co-deployed peer."""
    return [change for change in lattice_diff(old, new, corpus) if change.risky]


@dataclass(frozen=True)
class ReaderGap:
    """A logical type whose round trip through a format cannot be
    completed by the engine's transformer layer."""

    type_text: str
    physical: str
    error: str

    def render(self) -> str:
        return (
            f"{self.type_text}: stored as {self.physical}, read back fails "
            f"({self.error})"
        )


def reader_gaps(
    serializer: Serializer,
    corpus: tuple[str, ...] = DEFAULT_TYPE_CORPUS,
) -> list[ReaderGap]:
    """Types a write-then-read through this format cannot return.

    This is the static check whose absence let SPARK-39075 ship: it
    pairs the format's write-side promotion against the reader's
    transformer table and reports every mismatch.
    """
    gaps: list[ReaderGap] = []
    for type_text in corpus:
        logical = parse_type(type_text)
        try:
            physical = serializer.physical_type(logical)
        except ReproError:
            continue  # a write-side gap, reported by lattice_signature
        try:
            transformer_for(physical, logical, serializer.format_name)
        except ReproError as exc:
            gaps.append(
                ReaderGap(type_text, physical.simple_string(), str(exc))
            )
    return gaps
