"""Change analysis for cross-system interactions (§10)."""

from repro.evolution.analysis import (
    DEFAULT_TYPE_CORPUS,
    LatticeChange,
    ReaderGap,
    lattice_diff,
    lattice_signature,
    reader_gaps,
    upgrade_risks,
)

__all__ = [
    "DEFAULT_TYPE_CORPUS",
    "LatticeChange",
    "ReaderGap",
    "lattice_diff",
    "lattice_signature",
    "reader_gaps",
    "upgrade_risks",
]
