"""The study datasets: 120 OSS CSI failures, 55 incidents, CBS subset."""

from repro.dataset.cbs import EXPECTED_CBS_CSI, EXPECTED_CBS_TOTAL, load_cbs_issues
from repro.dataset.incidents import (
    EXPECTED_CSI,
    EXPECTED_INCIDENTS,
    load_incidents,
)
from repro.dataset.opensource import EXPECTED_TOTAL, PAIRS, PairSpec, load_failures
from repro.dataset.testsuites import (
    IntegrationTest,
    cross_test_fraction,
    load_spark_integration_tests,
)

__all__ = [
    "EXPECTED_CBS_CSI",
    "EXPECTED_CBS_TOTAL",
    "load_cbs_issues",
    "EXPECTED_CSI",
    "EXPECTED_INCIDENTS",
    "load_incidents",
    "EXPECTED_TOTAL",
    "PAIRS",
    "PairSpec",
    "load_failures",
    "IntegrationTest",
    "cross_test_fraction",
    "load_spark_integration_tests",
]
