"""Spark integration-test audit (§5.3).

The paper's case study of existing tests: "we analyzed all integration
tests of Spark and found that only 6% of them cross-test dependent
systems ... All cross-tested systems are of a specific version". This
module models that audit: a catalog of integration-test modules with a
``cross_system`` flag and, when set, the pinned downstream version.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

__all__ = ["IntegrationTest", "load_spark_integration_tests", "cross_test_fraction"]


@dataclass(frozen=True)
class IntegrationTest:
    name: str
    module: str
    cross_system: bool = False
    downstream: str | None = None
    pinned_version: str | None = None


_CROSS_TESTS = (
    ("HiveExternalCatalogVersionsSuite", "sql/hive", "Hive", "2.3.9"),
    ("HiveThriftServer2Suites", "sql/hive-thriftserver", "Hive", "2.3.9"),
    ("HiveSparkSubmitSuite", "sql/hive", "Hive", "2.3.9"),
    ("HiveClientSuites", "sql/hive", "Hive", "2.3.9"),
    ("KafkaRelationSuite", "connector/kafka", "Kafka", "2.8.1"),
    ("KafkaMicroBatchSourceSuite", "connector/kafka", "Kafka", "2.8.1"),
    ("KafkaContinuousSourceSuite", "connector/kafka", "Kafka", "2.8.1"),
    ("KafkaDontFailOnDataLossSuite", "connector/kafka", "Kafka", "2.8.1"),
    ("YarnClusterSuite", "resource-managers/yarn", "YARN", "3.3.1"),
    ("YarnShuffleIntegrationSuite", "resource-managers/yarn", "YARN", "3.3.1"),
    ("YarnSchedulerBackendSuite", "resource-managers/yarn", "YARN", "3.3.1"),
    ("HDFSMetadataLogSuite", "sql/core", "HDFS", "3.3.1"),
    ("HDFSBackedStateStoreSuite", "sql/core", "HDFS", "3.3.1"),
    ("HadoopDelegationTokenSuite", "core", "HDFS", "3.3.1"),
    ("KubernetesClusterSuite", "resource-managers/kubernetes", "Kubernetes", "1.22"),
)

_INTERNAL_MODULES = (
    "core", "sql/core", "sql/catalyst", "streaming", "mllib", "graphx",
    "launcher", "repl", "scheduler", "shuffle", "storage", "deploy",
    "network", "rpc", "serializer", "metrics", "ui", "history",
)


@functools.lru_cache(maxsize=1)
def load_spark_integration_tests() -> tuple[IntegrationTest, ...]:
    """250 integration tests, 15 (6%) of which cross-test a downstream."""
    tests: list[IntegrationTest] = [
        IntegrationTest(
            name=name,
            module=module,
            cross_system=True,
            downstream=downstream,
            pinned_version=version,
        )
        for name, module, downstream, version in _CROSS_TESTS
    ]
    index = 0
    while len(tests) < 250:
        module = _INTERNAL_MODULES[index % len(_INTERNAL_MODULES)]
        tests.append(
            IntegrationTest(
                name=f"{module.split('/')[-1].title()}IntegrationSuite{index:03d}",
                module=module,
            )
        )
        index += 1
    return tuple(tests)


def cross_test_fraction() -> float:
    tests = load_spark_integration_tests()
    return sum(1 for t in tests if t.cross_system) / len(tests)
