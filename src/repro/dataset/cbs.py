"""The Cloud Bug Study (2014) comparison subset (§4).

Applying the paper's collection criteria to the CBS ``cross``-labeled
issues yields 105 issues: 39 CSI failures, 15 dependency failures, and
51 that are not cross-system issues. Of the 39 CSI failures, 69% (27)
are control-plane — the contrast the paper draws against its own
dataset's 17%.
"""

from __future__ import annotations

import functools
import itertools

from repro.core.failure import CBSIssue
from repro.core.taxonomy import Plane

__all__ = ["load_cbs_issues", "EXPECTED_CBS_TOTAL", "EXPECTED_CBS_CSI"]

EXPECTED_CBS_TOTAL = 105
EXPECTED_CBS_CSI = 39

#: CBS covers six Hadoop-era systems
_SYSTEMS = ("MapReduce", "HDFS", "HBase", "Cassandra", "ZooKeeper", "Flume")

_CSI_PLANES = (
    [Plane.CONTROL] * 27  # 69% of 39
    + [Plane.DATA] * 7
    + [Plane.MANAGEMENT] * 5
)
_DEPENDENCY_COUNT = 15
_NOT_CROSS_COUNT = 51


@functools.lru_cache(maxsize=1)
def load_cbs_issues() -> tuple[CBSIssue, ...]:
    issues: list[CBSIssue] = []
    systems = itertools.cycle(_SYSTEMS)
    counter = itertools.count(1)

    for plane in _CSI_PLANES:
        issues.append(
            CBSIssue(
                issue_id=f"CBS-{next(counter):03d}",
                system=next(systems),
                is_csi=True,
                plane=plane,
            )
        )
    for _ in range(_DEPENDENCY_COUNT):
        issues.append(
            CBSIssue(
                issue_id=f"CBS-{next(counter):03d}",
                system=next(systems),
                is_csi=False,
                is_dependency=True,
            )
        )
    for _ in range(_NOT_CROSS_COUNT):
        issues.append(
            CBSIssue(
                issue_id=f"CBS-{next(counter):03d}",
                system=next(systems),
                is_csi=False,
            )
        )
    return tuple(issues)
