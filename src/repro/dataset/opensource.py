"""The 120-case open-source CSI failure dataset (§4).

The paper publishes *marginals* — Table 1 (system pairs), Table 2
(planes), Table 3 (symptoms), Tables 4-6 (data-plane labels), Table 7
(configuration patterns), Table 8 (control patterns), Table 9 (fixes) —
plus ~two dozen concretely described example issues. This module
reconstructs a per-case dataset that

* reproduces **every published marginal exactly**, and
* pins each issue the paper describes (FLINK-12342, SPARK-27239,
  SPARK-21686, ...) to its documented labels.

Joint distributions the paper does not publish (e.g. symptom × plane)
are synthesized deterministically: pinned cases consume their quota
first, remaining quota is dealt in a fixed order with plausibility
preferences. Synthetic cases carry ``synthetic=True`` and high issue
numbers so they cannot be mistaken for real JIRA ids.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass

from repro.core.failure import CSIFailure
from repro.core.taxonomy import (
    ApiMisuseKind,
    ConfigKind,
    ConfigPattern,
    ControlPattern,
    DataAbstraction,
    DataPattern,
    DataProperty,
    FixLocation,
    FixPattern,
    MgmtKind,
    Plane,
    Severity,
    Symptom,
)
from repro.errors import DatasetError

__all__ = ["PairSpec", "PAIRS", "load_failures", "EXPECTED_TOTAL"]

EXPECTED_TOTAL = 120


@dataclass(frozen=True)
class PairSpec:
    """One row of Table 1, extended with the per-plane split we chose.

    The paper's Table 1 fixes ``total`` per pair and the dominant
    interaction label; the (data, control, management) split per pair is
    not published and is our (consistent) choice.
    """

    upstream: str
    downstream: str
    interaction: str
    data: int
    control: int
    management: int

    @property
    def total(self) -> int:
        return self.data + self.control + self.management

    def pair_key(self) -> tuple[str, str]:
        return (self.upstream, self.downstream)


PAIRS: tuple[PairSpec, ...] = (
    PairSpec("Spark", "Hive", "Data (Hive tables)", 21, 0, 5),
    PairSpec("Spark", "YARN", "Control (resource management)", 0, 9, 10),
    PairSpec("Spark", "HDFS", "Data (files)", 6, 0, 2),
    PairSpec("Spark", "Kafka", "Data (streaming)", 4, 0, 1),
    PairSpec("Flink", "Kafka", "Data (streaming)", 8, 1, 3),
    PairSpec("Flink", "YARN", "Control (resource management)", 0, 7, 7),
    PairSpec("Flink", "Hive", "Data (Hive tables)", 6, 0, 2),
    PairSpec("Flink", "HDFS", "Data (file systems)", 3, 0, 0),
    PairSpec("Hive", "Spark", "Control (compute)", 0, 1, 5),
    PairSpec("Hive", "HBase", "Data (key-value store)", 2, 0, 1),
    PairSpec("Hive", "HDFS", "Data (files)", 6, 0, 0),
    PairSpec("Hive", "Kafka", "Data (streaming)", 1, 0, 0),
    PairSpec("Hive", "YARN", "Control (resource management)", 0, 1, 1),
    PairSpec("HBase", "HDFS", "Data (file systems)", 2, 1, 1),
    PairSpec("YARN", "HDFS", "Data (file systems)", 2, 0, 1),
)

#: data abstraction counts per pair (sums to the Table 5 column totals)
_ABSTRACTIONS: dict[tuple[str, str], dict[DataAbstraction, int]] = {
    ("Spark", "Hive"): {DataAbstraction.TABLE: 21},
    ("Spark", "HDFS"): {DataAbstraction.FILE: 6},
    ("Spark", "Kafka"): {DataAbstraction.STREAM: 3, DataAbstraction.TABLE: 1},
    ("Flink", "Kafka"): {DataAbstraction.STREAM: 5, DataAbstraction.TABLE: 3},
    ("Flink", "Hive"): {DataAbstraction.TABLE: 6},
    ("Flink", "HDFS"): {DataAbstraction.FILE: 3},
    ("Hive", "HBase"): {DataAbstraction.TABLE: 2},
    ("Hive", "HDFS"): {DataAbstraction.FILE: 5, DataAbstraction.TABLE: 1},
    ("Hive", "Kafka"): {DataAbstraction.TABLE: 1},
    ("HBase", "HDFS"): {DataAbstraction.FILE: 2},
    ("YARN", "HDFS"): {DataAbstraction.FILE: 2},
}

#: Table 5, verbatim
_TABLE5: dict[DataAbstraction, dict[DataProperty, int]] = {
    DataAbstraction.TABLE: {
        DataProperty.ADDRESS: 1,
        DataProperty.SCHEMA_STRUCTURE: 13,
        DataProperty.SCHEMA_VALUE: 16,
        DataProperty.CUSTOM_PROPERTY: 0,
        DataProperty.API_SEMANTICS: 5,
    },
    DataAbstraction.FILE: {
        DataProperty.ADDRESS: 8,
        DataProperty.SCHEMA_STRUCTURE: 0,
        DataProperty.SCHEMA_VALUE: 0,
        DataProperty.CUSTOM_PROPERTY: 8,
        DataProperty.API_SEMANTICS: 2,
    },
    DataAbstraction.STREAM: {
        DataProperty.ADDRESS: 1,
        DataProperty.SCHEMA_STRUCTURE: 1,
        DataProperty.SCHEMA_VALUE: 2,
        DataProperty.CUSTOM_PROPERTY: 0,
        DataProperty.API_SEMANTICS: 4,
    },
    DataAbstraction.KV_TUPLE: {prop: 0 for prop in DataProperty},
}

#: Table 6, verbatim
_TABLE6 = {
    DataPattern.TYPE_CONFUSION: 12,
    DataPattern.UNSUPPORTED_OPERATIONS: 15,
    DataPattern.UNSPOKEN_CONVENTION: 9,
    DataPattern.UNDEFINED_VALUES: 7,
    DataPattern.WRONG_API_ASSUMPTIONS: 18,
}

_PATTERN_PREFS = {
    DataProperty.API_SEMANTICS: (
        DataPattern.WRONG_API_ASSUMPTIONS,
        DataPattern.UNSUPPORTED_OPERATIONS,
    ),
    DataProperty.SCHEMA_VALUE: (
        DataPattern.TYPE_CONFUSION,
        DataPattern.UNDEFINED_VALUES,
        DataPattern.UNSUPPORTED_OPERATIONS,
    ),
    DataProperty.SCHEMA_STRUCTURE: (
        DataPattern.UNSPOKEN_CONVENTION,
        DataPattern.UNSUPPORTED_OPERATIONS,
        DataPattern.TYPE_CONFUSION,
    ),
    DataProperty.ADDRESS: (
        DataPattern.UNSPOKEN_CONVENTION,
        DataPattern.UNSUPPORTED_OPERATIONS,
        DataPattern.WRONG_API_ASSUMPTIONS,
    ),
    DataProperty.CUSTOM_PROPERTY: (
        DataPattern.UNDEFINED_VALUES,
        DataPattern.WRONG_API_ASSUMPTIONS,
        DataPattern.UNSUPPORTED_OPERATIONS,
    ),
}

#: Finding 6: 15/61 data-plane cases root in serialization
_SERIALIZATION_COUNT = 15

#: Table 7 + Finding 8
_TABLE7 = {
    ConfigPattern.IGNORANCE: 12,
    ConfigPattern.UNEXPECTED_OVERRIDE: 6,
    ConfigPattern.INCONSISTENT_CONTEXT: 10,
    ConfigPattern.MISHANDLING_VALUES: 2,
}
_CONFIG_KINDS = {ConfigKind.PARAMETER: 21, ConfigKind.COMPONENT: 9}
_MONITORING_COUNT = 9

#: Table 8 + Finding 11
_TABLE8 = {
    ControlPattern.API_SEMANTIC_VIOLATION: 13,
    ControlPattern.STATE_RESOURCE_INCONSISTENCY: 5,
    ControlPattern.FEATURE_INCONSISTENCY: 2,
}
_MISUSE_KINDS = {
    ApiMisuseKind.IMPLICIT_SEMANTIC_VIOLATION: 8,
    ApiMisuseKind.WRONG_INVOCATION_CONTEXT: 5,
}

#: Table 3 (normalized; see taxonomy docstring)
_TABLE3 = {
    Symptom.RUNTIME_CRASH_HANG: 8,
    Symptom.STARTUP_FAILURE: 4,
    Symptom.SYSTEM_PERFORMANCE: 3,
    Symptom.SYSTEM_DATA_LOSS: 2,
    Symptom.SYSTEM_UNEXPECTED: 3,
    Symptom.JOB_TASK_FAILURE: 47,
    Symptom.JOB_TASK_STARTUP: 6,
    Symptom.JOB_TASK_CRASH_HANG: 24,
    Symptom.WRONG_RESULTS: 3,
    Symptom.OPERATION_DATA_LOSS: 3,
    Symptom.REDUCED_OBSERVABILITY: 8,
    Symptom.OPERATION_UNEXPECTED: 5,
    Symptom.OPERATION_PERFORMANCE: 3,
    Symptom.USABILITY_ISSUE: 1,
}

#: Table 9 + Finding 13
_TABLE9 = {
    FixPattern.CHECKING: 38,
    FixPattern.ERROR_HANDLING: 8,
    FixPattern.INTERACTION: 69,
    FixPattern.OTHER: 5,
}
_FIX_LOCATIONS = {
    FixLocation.CONNECTOR: 68,
    FixLocation.SYSTEM_SPECIFIC: 11,
    FixLocation.GENERIC: 36,
}

#: severity split (not published; Blocker/Critical/Major only per §4)
_SEVERITIES = {Severity.BLOCKER: 18, Severity.CRITICAL: 37, Severity.MAJOR: 65}


# ---------------------------------------------------------------------------
# Pinned (real, paper-described) cases
# ---------------------------------------------------------------------------


@dataclass
class _Pin:
    issue_id: str
    upstream: str
    downstream: str
    plane: Plane
    description: str
    symptom: Symptom
    fix_pattern: FixPattern
    fix_location: FixLocation | None
    severity: Severity = Severity.MAJOR
    abstraction: DataAbstraction | None = None
    data_property: DataProperty | None = None
    data_pattern: DataPattern | None = None
    serialization: bool = False
    mgmt_kind: MgmtKind | None = None
    config_pattern: ConfigPattern | None = None
    config_kind: ConfigKind | None = None
    control_pattern: ControlPattern | None = None
    misuse_kind: ApiMisuseKind | None = None
    fixed_by_downstream: bool = False


_PINS: tuple[_Pin, ...] = (
    # --- data plane ------------------------------------------------------
    _Pin(
        "FLINK-17189", "Flink", "Hive", Plane.DATA,
        "Flink inserts a PROCTIME-typed value as TIMESTAMP in Hive but "
        "fails to translate it back.",
        Symptom.JOB_TASK_FAILURE, FixPattern.INTERACTION,
        FixLocation.CONNECTOR, Severity.CRITICAL,
        abstraction=DataAbstraction.TABLE,
        data_property=DataProperty.SCHEMA_VALUE,
        data_pattern=DataPattern.TYPE_CONFUSION, serialization=True,
    ),
    _Pin(
        "SPARK-18910", "Spark", "Hive", Plane.DATA,
        "Spark SQL did not support UDFs stored as jar files in HDFS.",
        Symptom.JOB_TASK_FAILURE, FixPattern.INTERACTION,
        FixLocation.CONNECTOR,
        abstraction=DataAbstraction.TABLE,
        data_property=DataProperty.API_SEMANTICS,
        data_pattern=DataPattern.UNSUPPORTED_OPERATIONS,
    ),
    _Pin(
        "SPARK-21686", "Spark", "Hive", Plane.DATA,
        "Spark failed to read column names in ORC files written by Hive "
        "(positional _colN naming convention).",
        Symptom.JOB_TASK_FAILURE, FixPattern.INTERACTION,
        FixLocation.CONNECTOR, Severity.CRITICAL,
        abstraction=DataAbstraction.TABLE,
        data_property=DataProperty.SCHEMA_STRUCTURE,
        data_pattern=DataPattern.UNSPOKEN_CONVENTION, serialization=True,
    ),
    _Pin(
        "SPARK-21150", "Spark", "Hive", Plane.DATA,
        "A code change lost case sensitivity between the interacting "
        "systems (discrepancy introduced during software evolution).",
        Symptom.WRONG_RESULTS, FixPattern.INTERACTION, FixLocation.GENERIC,
        abstraction=DataAbstraction.TABLE,
        data_property=DataProperty.SCHEMA_STRUCTURE,
        data_pattern=DataPattern.UNSPOKEN_CONVENTION, serialization=True,
    ),
    _Pin(
        "SPARK-27239", "Spark", "HDFS", Plane.DATA,
        "Spark asserts file length >= 0 while HDFS reports -1 for "
        "compressed files (Figure 2).",
        Symptom.JOB_TASK_FAILURE, FixPattern.CHECKING, FixLocation.GENERIC,
        abstraction=DataAbstraction.FILE,
        data_property=DataProperty.CUSTOM_PROPERTY,
        data_pattern=DataPattern.UNDEFINED_VALUES,
    ),
    _Pin(
        "SPARK-19361", "Spark", "Kafka", Plane.DATA,
        "Spark assumes Kafka offsets always increment by 1, which is not "
        "always true (compaction).",
        Symptom.JOB_TASK_CRASH_HANG, FixPattern.CHECKING,
        FixLocation.CONNECTOR, Severity.CRITICAL,
        abstraction=DataAbstraction.STREAM,
        data_property=DataProperty.API_SEMANTICS,
        data_pattern=DataPattern.WRONG_API_ASSUMPTIONS,
    ),
    _Pin(
        "SPARK-10122", "Spark", "Kafka", Plane.DATA,
        "PySpark's core streaming module lost a data attribute during "
        "compaction (generic code used with multiple downstreams).",
        Symptom.OPERATION_DATA_LOSS, FixPattern.INTERACTION,
        FixLocation.GENERIC,
        abstraction=DataAbstraction.STREAM,
        data_property=DataProperty.SCHEMA_STRUCTURE,
        data_pattern=DataPattern.UNSUPPORTED_OPERATIONS,
    ),
    _Pin(
        "FLINK-3081", "Flink", "Kafka", Plane.DATA,
        "Added a try-catch block to capture exceptions thrown by "
        "cross-system operations.",
        Symptom.JOB_TASK_CRASH_HANG, FixPattern.ERROR_HANDLING,
        FixLocation.CONNECTOR,
        abstraction=DataAbstraction.STREAM,
        data_property=DataProperty.SCHEMA_VALUE,
        data_pattern=DataPattern.TYPE_CONFUSION, serialization=True,
    ),
    _Pin(
        "FLINK-13758", "Flink", "HDFS", Plane.DATA,
        "Upstream had to operate on files stored in local and remote "
        "storage differently (non-POSIX custom property).",
        Symptom.JOB_TASK_FAILURE, FixPattern.INTERACTION,
        FixLocation.CONNECTOR,
        abstraction=DataAbstraction.FILE,
        data_property=DataProperty.CUSTOM_PROPERTY,
        data_pattern=DataPattern.WRONG_API_ASSUMPTIONS,
    ),
    _Pin(
        "YARN-2790", "YARN", "HDFS", Plane.DATA,
        "Token renewal moved close to the HDFS operation consuming it; "
        "expiration can still happen (fix reduces, not removes).",
        Symptom.JOB_TASK_FAILURE, FixPattern.INTERACTION,
        FixLocation.SYSTEM_SPECIFIC,
        abstraction=DataAbstraction.FILE,
        data_property=DataProperty.API_SEMANTICS,
        data_pattern=DataPattern.WRONG_API_ASSUMPTIONS,
    ),
    # --- management plane ----------------------------------------------------
    _Pin(
        "FLINK-19141", "Flink", "YARN", Plane.MANAGEMENT,
        "Flink and YARN use inconsistent resource allocation "
        "configurations for different YARN schedulers (Figure 3).",
        Symptom.JOB_TASK_STARTUP, FixPattern.CHECKING,
        FixLocation.CONNECTOR, Severity.CRITICAL,
        mgmt_kind=MgmtKind.CONFIGURATION,
        config_pattern=ConfigPattern.INCONSISTENT_CONTEXT,
        config_kind=ConfigKind.PARAMETER,
    ),
    _Pin(
        "SPARK-10181", "Spark", "Hive", Plane.MANAGEMENT,
        "Spark's Hive client ignored Kerberos configuration (keytab and "
        "principal).",
        Symptom.JOB_TASK_FAILURE, FixPattern.INTERACTION,
        FixLocation.CONNECTOR, Severity.BLOCKER,
        mgmt_kind=MgmtKind.CONFIGURATION,
        config_pattern=ConfigPattern.IGNORANCE,
        config_kind=ConfigKind.PARAMETER,
    ),
    _Pin(
        "SPARK-16901", "Spark", "Hive", Plane.MANAGEMENT,
        "Spark incorrectly overwrote Hive's configuration when merging "
        "with the Hadoop configuration.",
        Symptom.JOB_TASK_FAILURE, FixPattern.INTERACTION,
        FixLocation.CONNECTOR, Severity.CRITICAL,
        mgmt_kind=MgmtKind.CONFIGURATION,
        config_pattern=ConfigPattern.UNEXPECTED_OVERRIDE,
        config_kind=ConfigKind.COMPONENT,
    ),
    _Pin(
        "SPARK-15046", "Spark", "YARN", Plane.MANAGEMENT,
        "Spark ApplicationMaster on YARN treats an interval configuration "
        "as numeric, which is allowed to be 86400079ms.",
        Symptom.JOB_TASK_STARTUP, FixPattern.CHECKING,
        FixLocation.CONNECTOR,
        mgmt_kind=MgmtKind.CONFIGURATION,
        config_pattern=ConfigPattern.MISHANDLING_VALUES,
        config_kind=ConfigKind.PARAMETER,
    ),
    _Pin(
        "HIVE-11250", "Hive", "Spark", Plane.MANAGEMENT,
        "Hive ignores all updates to the Spark configuration via "
        "RemoteHiveSparkClient (update flag not set).",
        Symptom.OPERATION_UNEXPECTED, FixPattern.INTERACTION,
        FixLocation.CONNECTOR,
        mgmt_kind=MgmtKind.CONFIGURATION,
        config_pattern=ConfigPattern.IGNORANCE,
        config_kind=ConfigKind.COMPONENT,
    ),
    _Pin(
        "SPARK-10851", "Spark", "YARN", Plane.MANAGEMENT,
        "Spark's R runner does not throw the right exception to YARN when "
        "an application fails; it exits silently.",
        Symptom.REDUCED_OBSERVABILITY, FixPattern.ERROR_HANDLING,
        FixLocation.CONNECTOR,
        mgmt_kind=MgmtKind.MONITORING,
    ),
    _Pin(
        "SPARK-3627", "Spark", "YARN", Plane.MANAGEMENT,
        "Spark reports success for failed YARN jobs.",
        Symptom.REDUCED_OBSERVABILITY, FixPattern.INTERACTION,
        FixLocation.CONNECTOR, Severity.CRITICAL,
        mgmt_kind=MgmtKind.MONITORING,
    ),
    _Pin(
        "FLINK-887", "Flink", "YARN", Plane.MANAGEMENT,
        "Flink's JobManager running as a YARN container is killed by "
        "YARN's pmem monitor without JVM memory headroom.",
        Symptom.RUNTIME_CRASH_HANG, FixPattern.INTERACTION,
        FixLocation.CONNECTOR, Severity.BLOCKER,
        mgmt_kind=MgmtKind.MONITORING,
    ),
    # --- control plane --------------------------------------------------------
    _Pin(
        "FLINK-12342", "Flink", "YARN", Plane.CONTROL,
        "Flink uses the container-request API assuming synchronous "
        "semantics; pending requests snowball and overload YARN "
        "(Figure 1).",
        Symptom.RUNTIME_CRASH_HANG, FixPattern.INTERACTION,
        FixLocation.CONNECTOR, Severity.BLOCKER,
        control_pattern=ControlPattern.API_SEMANTIC_VIOLATION,
        misuse_kind=ApiMisuseKind.IMPLICIT_SEMANTIC_VIOLATION,
    ),
    _Pin(
        "FLINK-5542", "Flink", "YARN", Plane.CONTROL,
        "An API for reading local vcore information was used in a global "
        "context, misreporting available cores.",
        Symptom.JOB_TASK_FAILURE, FixPattern.CHECKING,
        FixLocation.CONNECTOR,
        control_pattern=ControlPattern.API_SEMANTIC_VIOLATION,
        misuse_kind=ApiMisuseKind.WRONG_INVOCATION_CONTEXT,
    ),
    _Pin(
        "FLINK-4155", "Flink", "Kafka", Plane.CONTROL,
        "Kafka partition discovery invoked in a client context that may "
        "not reach the Kafka cluster.",
        Symptom.JOB_TASK_STARTUP, FixPattern.INTERACTION,
        FixLocation.CONNECTOR,
        control_pattern=ControlPattern.API_SEMANTIC_VIOLATION,
        misuse_kind=ApiMisuseKind.WRONG_INVOCATION_CONTEXT,
    ),
    _Pin(
        "SPARK-2604", "Spark", "YARN", Plane.CONTROL,
        "Inconsistent resource calculations between Spark and YARN.",
        Symptom.JOB_TASK_STARTUP, FixPattern.CHECKING,
        FixLocation.CONNECTOR,
        control_pattern=ControlPattern.STATE_RESOURCE_INCONSISTENCY,
    ),
    _Pin(
        "HBASE-537", "HBase", "HDFS", Plane.CONTROL,
        "HBase wrongly assumed HDFS NameNode readiness while it was in "
        "safe mode.",
        Symptom.STARTUP_FAILURE, FixPattern.CHECKING,
        FixLocation.SYSTEM_SPECIFIC, Severity.BLOCKER,
        control_pattern=ControlPattern.STATE_RESOURCE_INCONSISTENCY,
    ),
    _Pin(
        "YARN-9724", "Spark", "YARN", Plane.CONTROL,
        "Spark assumed availability of getYarnClusterMetrics APIs in all "
        "YARN modes; the downstream fixed the API contract violation.",
        Symptom.JOB_TASK_STARTUP, FixPattern.INTERACTION,
        FixLocation.SYSTEM_SPECIFIC,
        control_pattern=ControlPattern.FEATURE_INCONSISTENCY,
        fixed_by_downstream=True,
    ),
)


# ---------------------------------------------------------------------------
# Quota dealing machinery
# ---------------------------------------------------------------------------


class _Dealer:
    """Deterministic quota dealer: pins consume first, then preferences."""

    def __init__(self, quota: dict) -> None:
        self.remaining = dict(quota)

    def pin(self, item) -> None:
        if self.remaining.get(item, 0) <= 0:
            raise DatasetError(f"quota exhausted while pinning {item}")
        self.remaining[item] -= 1

    def take(self, preferences=()) -> object:
        for item in preferences:
            if self.remaining.get(item, 0) > 0:
                self.remaining[item] -= 1
                return item
        for item, count in self.remaining.items():
            if count > 0:
                self.remaining[item] -= 1
                return item
        raise DatasetError("all quotas exhausted")

    def assert_empty(self, label: str) -> None:
        leftovers = {k: v for k, v in self.remaining.items() if v}
        if leftovers:
            raise DatasetError(f"{label}: undealt quota {leftovers}")


@dataclass
class _Skeleton:
    pair: PairSpec
    plane: Plane
    pin: _Pin | None = None
    abstraction: DataAbstraction | None = None
    data_property: DataProperty | None = None
    data_pattern: DataPattern | None = None
    serialization: bool = False
    mgmt_kind: MgmtKind | None = None
    config_pattern: ConfigPattern | None = None
    config_kind: ConfigKind | None = None
    control_pattern: ControlPattern | None = None
    misuse_kind: ApiMisuseKind | None = None
    symptom: Symptom | None = None
    severity: Severity | None = None
    fix_pattern: FixPattern | None = None
    fix_location: FixLocation | None = None


def _build_skeletons() -> list[_Skeleton]:
    """Create 120 slots and attach each pin to a matching slot."""
    skeletons: list[_Skeleton] = []
    for pair in PAIRS:
        for _ in range(pair.data):
            skeletons.append(_Skeleton(pair, Plane.DATA))
        for _ in range(pair.control):
            skeletons.append(_Skeleton(pair, Plane.CONTROL))
        for _ in range(pair.management):
            skeletons.append(_Skeleton(pair, Plane.MANAGEMENT))
    if len(skeletons) != EXPECTED_TOTAL:
        raise DatasetError(f"expected 120 slots, built {len(skeletons)}")

    for pin in _PINS:
        slot = next(
            (
                s
                for s in skeletons
                if s.pin is None
                and s.pair.upstream == pin.upstream
                and s.pair.downstream == pin.downstream
                and s.plane == pin.plane
            ),
            None,
        )
        if slot is None:
            raise DatasetError(f"no free slot for pinned case {pin.issue_id}")
        slot.pin = pin
    return skeletons


def _assign_data_labels(skeletons: list[_Skeleton]) -> None:
    data_cases = [s for s in skeletons if s.plane is Plane.DATA]

    # abstractions per pair
    per_pair: dict[tuple[str, str], list[_Skeleton]] = {}
    for case in data_cases:
        per_pair.setdefault(case.pair.pair_key(), []).append(case)

    for pair_key, cases in per_pair.items():
        dealer = _Dealer(_ABSTRACTIONS[pair_key])
        pinned = [c for c in cases if c.pin is not None]
        for case in pinned:
            dealer.pin(case.pin.abstraction)
            case.abstraction = case.pin.abstraction
        for case in cases:
            if case.abstraction is None:
                case.abstraction = dealer.take()
        dealer.assert_empty(f"abstractions for {pair_key}")

    # properties per abstraction (Table 5)
    for abstraction in DataAbstraction:
        group = [c for c in data_cases if c.abstraction is abstraction]
        dealer = _Dealer(_TABLE5[abstraction])
        for case in group:
            if case.pin is not None:
                dealer.pin(case.pin.data_property)
                case.data_property = case.pin.data_property
        for case in group:
            if case.data_property is None:
                case.data_property = dealer.take()
        dealer.assert_empty(f"properties for {abstraction}")

    # patterns (Table 6), processed in the feasibility-checked order
    dealer = _Dealer(_TABLE6)
    for case in data_cases:
        if case.pin is not None:
            dealer.pin(case.pin.data_pattern)
            case.data_pattern = case.pin.data_pattern
            case.serialization = case.pin.serialization
    order = [
        DataProperty.API_SEMANTICS,
        DataProperty.SCHEMA_VALUE,
        DataProperty.SCHEMA_STRUCTURE,
        DataProperty.ADDRESS,
        DataProperty.CUSTOM_PROPERTY,
    ]
    for prop in order:
        for case in data_cases:
            if case.data_property is prop and case.data_pattern is None:
                case.data_pattern = dealer.take(_PATTERN_PREFS[prop])
    dealer.assert_empty("data patterns")

    # serialization-rooted flags (Finding 6): pins first, then schema-
    # property cases with conversion-flavoured patterns.
    flagged = sum(1 for c in data_cases if c.serialization)
    candidates = [
        c
        for c in data_cases
        if not c.serialization
        and c.data_property is not None
        and c.data_property.is_schema
        and c.data_pattern
        in (
            DataPattern.TYPE_CONFUSION,
            DataPattern.UNSPOKEN_CONVENTION,
            DataPattern.UNSUPPORTED_OPERATIONS,
        )
    ]
    for case in candidates:
        if flagged >= _SERIALIZATION_COUNT:
            break
        case.serialization = True
        flagged += 1
    if flagged != _SERIALIZATION_COUNT:
        raise DatasetError(
            f"could only flag {flagged} serialization-rooted cases"
        )


def _assign_mgmt_labels(skeletons: list[_Skeleton]) -> None:
    mgmt_cases = [s for s in skeletons if s.plane is Plane.MANAGEMENT]
    kind_dealer = _Dealer(
        {
            MgmtKind.CONFIGURATION: len(mgmt_cases) - _MONITORING_COUNT,
            MgmtKind.MONITORING: _MONITORING_COUNT,
        }
    )
    for case in mgmt_cases:
        if case.pin is not None:
            kind_dealer.pin(case.pin.mgmt_kind)
            case.mgmt_kind = case.pin.mgmt_kind
    # bias the remaining monitoring slots toward the RM pairs
    for case in mgmt_cases:
        if case.mgmt_kind is None and case.pair.downstream == "YARN":
            if kind_dealer.remaining[MgmtKind.MONITORING] > 0:
                kind_dealer.pin(MgmtKind.MONITORING)
                case.mgmt_kind = MgmtKind.MONITORING
    for case in mgmt_cases:
        if case.mgmt_kind is None:
            case.mgmt_kind = kind_dealer.take(
                (MgmtKind.CONFIGURATION, MgmtKind.MONITORING)
            )
    kind_dealer.assert_empty("management kinds")

    config_cases = [
        c for c in mgmt_cases if c.mgmt_kind is MgmtKind.CONFIGURATION
    ]
    pattern_dealer = _Dealer(_TABLE7)
    kind_dealer = _Dealer(_CONFIG_KINDS)
    for case in config_cases:
        if case.pin is not None:
            pattern_dealer.pin(case.pin.config_pattern)
            kind_dealer.pin(case.pin.config_kind)
            case.config_pattern = case.pin.config_pattern
            case.config_kind = case.pin.config_kind
    for case in config_cases:
        if case.config_pattern is None:
            case.config_pattern = pattern_dealer.take(
                (
                    ConfigPattern.IGNORANCE,
                    ConfigPattern.INCONSISTENT_CONTEXT,
                    ConfigPattern.UNEXPECTED_OVERRIDE,
                    ConfigPattern.MISHANDLING_VALUES,
                )
            )
            # component-level issues skew toward override/ignorance cases
            prefs = (
                (ConfigKind.COMPONENT, ConfigKind.PARAMETER)
                if case.config_pattern is ConfigPattern.UNEXPECTED_OVERRIDE
                else (ConfigKind.PARAMETER, ConfigKind.COMPONENT)
            )
            case.config_kind = kind_dealer.take(prefs)
    pattern_dealer.assert_empty("config patterns")
    kind_dealer.assert_empty("config kinds")


def _assign_control_labels(skeletons: list[_Skeleton]) -> None:
    control_cases = [s for s in skeletons if s.plane is Plane.CONTROL]
    pattern_dealer = _Dealer(_TABLE8)
    misuse_dealer = _Dealer(_MISUSE_KINDS)
    for case in control_cases:
        if case.pin is not None:
            pattern_dealer.pin(case.pin.control_pattern)
            case.control_pattern = case.pin.control_pattern
            if case.pin.misuse_kind is not None:
                misuse_dealer.pin(case.pin.misuse_kind)
                case.misuse_kind = case.pin.misuse_kind
    for case in control_cases:
        if case.control_pattern is None:
            case.control_pattern = pattern_dealer.take(
                (
                    ControlPattern.API_SEMANTIC_VIOLATION,
                    ControlPattern.STATE_RESOURCE_INCONSISTENCY,
                    ControlPattern.FEATURE_INCONSISTENCY,
                )
            )
        if (
            case.control_pattern is ControlPattern.API_SEMANTIC_VIOLATION
            and case.misuse_kind is None
        ):
            case.misuse_kind = misuse_dealer.take(
                (
                    ApiMisuseKind.IMPLICIT_SEMANTIC_VIOLATION,
                    ApiMisuseKind.WRONG_INVOCATION_CONTEXT,
                )
            )
    pattern_dealer.assert_empty("control patterns")
    misuse_dealer.assert_empty("API misuse kinds")


def _assign_cross_cutting(skeletons: list[_Skeleton]) -> None:
    symptom_dealer = _Dealer(_TABLE3)
    severity_dealer = _Dealer(_SEVERITIES)
    fix_dealer = _Dealer(_TABLE9)
    location_dealer = _Dealer(_FIX_LOCATIONS)

    for case in skeletons:
        if case.pin is not None:
            symptom_dealer.pin(case.pin.symptom)
            severity_dealer.pin(case.pin.severity)
            fix_dealer.pin(case.pin.fix_pattern)
            if case.pin.fix_location is not None:
                location_dealer.pin(case.pin.fix_location)
            case.symptom = case.pin.symptom
            case.severity = case.pin.severity
            case.fix_pattern = case.pin.fix_pattern
            case.fix_location = case.pin.fix_location

    # monitoring cases skew to reduced observability (§6.2.2)
    for case in skeletons:
        if (
            case.symptom is None
            and case.mgmt_kind is MgmtKind.MONITORING
            and symptom_dealer.remaining[Symptom.REDUCED_OBSERVABILITY] > 0
        ):
            symptom_dealer.pin(Symptom.REDUCED_OBSERVABILITY)
            case.symptom = Symptom.REDUCED_OBSERVABILITY

    symptom_prefs = {
        Plane.DATA: (
            Symptom.JOB_TASK_FAILURE,
            Symptom.JOB_TASK_CRASH_HANG,
            Symptom.WRONG_RESULTS,
            Symptom.OPERATION_DATA_LOSS,
        ),
        Plane.MANAGEMENT: (
            Symptom.JOB_TASK_FAILURE,
            Symptom.JOB_TASK_STARTUP,
            Symptom.OPERATION_UNEXPECTED,
            Symptom.JOB_TASK_CRASH_HANG,
        ),
        Plane.CONTROL: (
            Symptom.JOB_TASK_CRASH_HANG,
            Symptom.RUNTIME_CRASH_HANG,
            Symptom.STARTUP_FAILURE,
            Symptom.JOB_TASK_FAILURE,
        ),
    }
    for case in skeletons:
        if case.symptom is None:
            case.symptom = symptom_dealer.take(symptom_prefs[case.plane])
        if case.severity is None:
            case.severity = severity_dealer.take(
                (Severity.MAJOR, Severity.CRITICAL, Severity.BLOCKER)
            )
    symptom_dealer.assert_empty("symptoms")
    severity_dealer.assert_empty("severities")

    fix_prefs = {
        Plane.DATA: (FixPattern.INTERACTION, FixPattern.CHECKING),
        Plane.MANAGEMENT: (FixPattern.INTERACTION, FixPattern.CHECKING),
        Plane.CONTROL: (FixPattern.INTERACTION, FixPattern.CHECKING),
    }
    for case in skeletons:
        if case.fix_pattern is None:
            case.fix_pattern = fix_dealer.take(fix_prefs[case.plane])
        if (
            case.fix_location is None
            and case.fix_pattern is not FixPattern.OTHER
        ):
            case.fix_location = location_dealer.take(
                (
                    FixLocation.CONNECTOR,
                    FixLocation.GENERIC,
                    FixLocation.SYSTEM_SPECIFIC,
                )
            )
    fix_dealer.assert_empty("fix patterns")
    location_dealer.assert_empty("fix locations")


def _describe(case: _Skeleton) -> str:
    if case.plane is Plane.DATA:
        abstraction = (
            case.abstraction.value.lower() if case.abstraction else "dataset"
        )
        return (
            f"{case.pair.upstream} and {case.pair.downstream} disagree on a "
            f"{case.data_property.value.lower()} of a {abstraction} "
            f"({case.data_pattern.value.lower()})."
        )
    if case.plane is Plane.MANAGEMENT:
        if case.mgmt_kind is MgmtKind.MONITORING:
            return (
                f"Monitoring data exchanged between {case.pair.upstream} and "
                f"{case.pair.downstream} is missing or misinterpreted."
            )
        return (
            f"A {case.config_kind.value} configuration of "
            f"{case.pair.upstream}'s interaction with "
            f"{case.pair.downstream} fails by "
            f"{case.config_pattern.value.lower()}."
        )
    detail = (
        f" ({case.misuse_kind.value})" if case.misuse_kind is not None else ""
    )
    return (
        f"{case.pair.upstream} violates a control-plane expectation of "
        f"{case.pair.downstream}: {case.control_pattern.value.lower()}{detail}."
    )


@functools.lru_cache(maxsize=1)
def load_failures() -> tuple[CSIFailure, ...]:
    """Build (once) and return the 120-case dataset."""
    skeletons = _build_skeletons()
    _assign_data_labels(skeletons)
    _assign_mgmt_labels(skeletons)
    _assign_control_labels(skeletons)
    _assign_cross_cutting(skeletons)

    counters: dict[str, itertools.count] = {}
    failures: list[CSIFailure] = []
    for index, case in enumerate(skeletons, start=1):
        if case.pin is not None:
            issue_id = case.pin.issue_id
            description = case.pin.description
            synthetic = False
            fixed_by_downstream = case.pin.fixed_by_downstream
        else:
            upstream_key = case.pair.upstream.upper()
            counter = counters.setdefault(upstream_key, itertools.count(90001))
            issue_id = f"{upstream_key}-{next(counter)}"
            description = _describe(case)
            synthetic = True
            fixed_by_downstream = False
        failures.append(
            CSIFailure(
                case_id=f"CSI-{index:03d}",
                issue_id=issue_id,
                upstream=case.pair.upstream,
                downstream=case.pair.downstream,
                interaction=case.pair.interaction,
                plane=case.plane,
                symptom=case.symptom,
                severity=case.severity,
                fix_pattern=case.fix_pattern,
                description=description,
                synthetic=synthetic,
                data_abstraction=case.abstraction,
                data_property=case.data_property,
                data_pattern=case.data_pattern,
                serialization_rooted=case.serialization,
                mgmt_kind=case.mgmt_kind,
                config_pattern=case.config_pattern,
                config_kind=case.config_kind,
                control_pattern=case.control_pattern,
                api_misuse_kind=case.misuse_kind,
                fix_location=case.fix_location,
                fixed_by_downstream=fixed_by_downstream,
            )
        )
    return tuple(failures)
