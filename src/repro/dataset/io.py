"""Export/import for the study datasets.

The paper ships its dataset as the artifact's CSV/notebook; this module
gives the reconstruction the same property: dump every record to JSON,
reload it, and recompute the study from the file instead of the code.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.failure import CloudIncident, CSIFailure
from repro.core.taxonomy import (
    ApiMisuseKind,
    ConfigKind,
    ConfigPattern,
    ControlPattern,
    DataAbstraction,
    DataPattern,
    DataProperty,
    FixLocation,
    FixPattern,
    MgmtKind,
    Plane,
    Severity,
    Symptom,
)
from repro.errors import DatasetError

__all__ = [
    "failure_to_dict",
    "failure_from_dict",
    "dump_failures",
    "load_failures_from_file",
    "incident_to_dict",
]

_ENUMS = {
    "plane": Plane,
    "symptom": Symptom,
    "severity": Severity,
    "fix_pattern": FixPattern,
    "data_abstraction": DataAbstraction,
    "data_property": DataProperty,
    "data_pattern": DataPattern,
    "mgmt_kind": MgmtKind,
    "config_pattern": ConfigPattern,
    "config_kind": ConfigKind,
    "control_pattern": ControlPattern,
    "api_misuse_kind": ApiMisuseKind,
    "fix_location": FixLocation,
}


def failure_to_dict(failure: CSIFailure) -> dict:
    record: dict[str, object] = {
        "case_id": failure.case_id,
        "issue_id": failure.issue_id,
        "upstream": failure.upstream,
        "downstream": failure.downstream,
        "interaction": failure.interaction,
        "description": failure.description,
        "synthetic": failure.synthetic,
        "serialization_rooted": failure.serialization_rooted,
        "fixed_by_downstream": failure.fixed_by_downstream,
    }
    for name, _ in _ENUMS.items():
        value = getattr(failure, name)
        record[name] = value.name if value is not None else None
    return record


def failure_from_dict(record: dict) -> CSIFailure:
    kwargs = dict(record)
    try:
        for name, enum_type in _ENUMS.items():
            raw = kwargs.get(name)
            kwargs[name] = enum_type[raw] if raw is not None else None
        return CSIFailure(**kwargs)
    except (KeyError, TypeError) as exc:
        raise DatasetError(f"malformed failure record: {exc}") from exc


def dump_failures(failures: tuple[CSIFailure, ...], path: str | Path) -> Path:
    path = Path(path)
    payload = [failure_to_dict(f) for f in failures]
    path.write_text(json.dumps(payload, indent=1))
    return path


def load_failures_from_file(path: str | Path) -> tuple[CSIFailure, ...]:
    raw = json.loads(Path(path).read_text())
    if not isinstance(raw, list):
        raise DatasetError(f"{path}: expected a JSON list of records")
    return tuple(failure_from_dict(record) for record in raw)


def incident_to_dict(incident: CloudIncident) -> dict:
    return {
        "incident_id": incident.incident_id,
        "provider": incident.provider,
        "is_csi": incident.is_csi,
        "summary": incident.summary,
        "duration_minutes": incident.duration_minutes,
        "plane": incident.plane.name if incident.plane else None,
        "impaired_external_services": incident.impaired_external_services,
        "mentions_interaction_fix": incident.mentions_interaction_fix,
    }
