"""Cloud incident reports (§3): 55 reports, 11 CSI-induced.

The paper samples 20 recent GCP incidents, 20 Azure incidents and all
15 AWS incidents with post-event summaries, and identifies 11 CSI
failures with: durations from 10 minutes to 19 hours (median 106
minutes), 8/11 impairing external services, and only 4/11 mentioning
interaction-related code fixes. The four concretely described incidents
(the GCP User-ID quota outage, App Engine scheduling, BigQuery metadata
queries, and the configuration-update incident) are pinned with their
described plane.
"""

from __future__ import annotations

import functools

from repro.core.failure import CloudIncident
from repro.core.taxonomy import Plane

__all__ = ["load_incidents", "EXPECTED_INCIDENTS", "EXPECTED_CSI"]

EXPECTED_INCIDENTS = 55
EXPECTED_CSI = 11

#: (provider, duration_minutes, plane, impaired_external, mentions_fix, summary)
_CSI_INCIDENTS = (
    (
        "gcp", 10, Plane.DATA, False, False,
        "BigQuery: metadata queries failed across interacting storage "
        "components.",
    ),
    (
        "gcp", 25, Plane.CONTROL, False, True,
        "App Engine: scheduling interaction between the placement and "
        "admission subsystems misbehaved.",
    ),
    (
        "gcp", 47, Plane.MANAGEMENT, True, True,
        "Google User-ID serving: a deregistered monitor reported usage 0 "
        "to the quota system, which cut the service's quota (YouTube and "
        "Gmail impacted).",
    ),
    (
        "azure", 63, Plane.MANAGEMENT, True, False,
        "Configuration update propagated between control services with "
        "inconsistent interpretation.",
    ),
    (
        "aws", 95, Plane.CONTROL, True, False,
        "Capacity system and placement system held inconsistent views of "
        "fleet state.",
    ),
    (
        "gcp", 106, Plane.DATA, True, True,
        "Cross-service data-format mismatch in replicated metadata.",
    ),
    (
        "azure", 120, Plane.DATA, True, False,
        "Inconsistent data formats across interacting components and "
        "versions.",
    ),
    (
        "azure", 180, Plane.MANAGEMENT, True, False,
        "Monitoring pipeline fed stale values into an automated "
        "mitigation system.",
    ),
    (
        "aws", 240, Plane.CONTROL, True, True,
        "Scaling activity in one subsystem overloaded the API layer of a "
        "dependent subsystem.",
    ),
    (
        "gcp", 420, Plane.MANAGEMENT, False, False,
        "Quota configuration rollout interacted badly with an older "
        "regional control plane.",
    ),
    (
        "azure", 1140, Plane.DATA, True, False,
        "A 19-hour incident rooted in serialized state one service wrote "
        "and a peer could not parse.",
    ),
)

_NON_CSI_COUNTS = {"gcp": 15, "azure": 16, "aws": 13}


@functools.lru_cache(maxsize=1)
def load_incidents() -> tuple[CloudIncident, ...]:
    incidents: list[CloudIncident] = []
    counter = 1
    for provider, duration, plane, external, fix, summary in _CSI_INCIDENTS:
        incidents.append(
            CloudIncident(
                incident_id=f"INC-{counter:03d}",
                provider=provider,
                is_csi=True,
                summary=summary,
                duration_minutes=duration,
                plane=plane,
                impaired_external_services=external,
                mentions_interaction_fix=fix,
            )
        )
        counter += 1
    for provider, count in _NON_CSI_COUNTS.items():
        for index in range(count):
            incidents.append(
                CloudIncident(
                    incident_id=f"INC-{counter:03d}",
                    provider=provider,
                    is_csi=False,
                    summary=f"{provider} incident without a cross-system "
                    f"interaction root cause ({index + 1}).",
                )
            )
            counter += 1
    return tuple(incidents)
