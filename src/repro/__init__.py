"""repro — reproduction of "Fail through the Cracks: Cross-System
Interaction Failures in Modern Cloud Systems" (EuroSys '23).

The package has three layers:

* :mod:`repro.core` + :mod:`repro.dataset` — the empirical study: the
  CSI failure taxonomy, the encoded datasets (120 open-source cases,
  55 cloud incidents, the CBS comparison), and the analysis engine that
  regenerates every table and finding.
* :mod:`repro.crosstest` — the §8 cross-system testing tool for the
  Spark–Hive data plane (inputs, plans, oracles, harness, discrepancy
  catalog).
* the substrates — :mod:`repro.sparklite`, :mod:`repro.hivelite`,
  :mod:`repro.formats`, :mod:`repro.storage`, :mod:`repro.yarnlite`,
  :mod:`repro.flinklite`, :mod:`repro.kafkalite`, plus the
  :mod:`repro.connectors` layer and executable :mod:`repro.scenarios`.

Quickstart::

    from repro.crosstest import run_crosstest
    report = run_crosstest()
    print("\\n".join(report.summary_lines()))
"""

from repro.core.analysis import compute_findings
from repro.crosstest.report import run_crosstest
from repro.dataset import load_cbs_issues, load_failures, load_incidents
from repro.scenarios.registry import SCENARIOS, run_all

__version__ = "1.0.0"

__all__ = [
    "compute_findings",
    "run_crosstest",
    "load_cbs_issues",
    "load_failures",
    "load_incidents",
    "SCENARIOS",
    "run_all",
    "__version__",
]
