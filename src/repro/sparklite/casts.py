"""Spark's cast engine: ANSI vs legacy semantics, and store assignment.

Spark has two coercion entry points with *different failure behaviour*:

* the SQL ``INSERT`` path goes through **store assignment**
  (``spark.sql.storeAssignmentPolicy``, default ``ansi``), which raises
  on overflow and on unsafe conversions;
* the DataFrame write path goes through the **legacy cast**, which
  wraps integrals two's-complement style and degrades failures to NULL.

That asymmetry is the single mechanism behind the paper's "inconsistent
error behaviour across interfaces" family (discrepancies #5, #9, #10,
#11, #12 — 7/15 of the case-study findings), so it is implemented here
once and shared by both paths.
"""

from __future__ import annotations

import datetime
import decimal
import functools
import math
from collections.abc import Callable

from repro.common.types import (
    ArrayType,
    BinaryType,
    BooleanType,
    CharType,
    DataType,
    DateType,
    DecimalType,
    DoubleType,
    FloatType,
    MapType,
    NullType,
    StringType,
    StructType,
    TimestampNTZType,
    TimestampType,
    VarcharType,
    is_integral,
    is_numeric,
)
from repro.errors import AnalysisException, ArithmeticOverflowError, CastError
from repro.sparklite.conf import StoreAssignmentPolicy

__all__ = [
    "cast_kernel",
    "spark_cast",
    "spark_cast_reference",
    "store_assign",
    "store_assign_kernel",
    "store_assign_reference",
    "wrap_integral",
]

_BOOL_TOKENS = {
    "true": True,
    "t": True,
    "yes": True,
    "y": True,
    "1": True,
    "false": False,
    "f": False,
    "no": False,
    "n": False,
    "0": False,
}

_FLOAT_SPELLINGS = {
    "nan": math.nan,
    "inf": math.inf,
    "infinity": math.inf,
    "+infinity": math.inf,
    "-inf": -math.inf,
    "-infinity": -math.inf,
}


def wrap_integral(value: int, dtype: DataType) -> int:
    """Two's-complement wraparound into the type's bit width (legacy)."""
    lo, hi = dtype.min_value, dtype.max_value
    width = hi - lo + 1
    return (value - lo) % width + lo


def spark_cast(
    value: object, source: DataType, target: DataType, *, ansi: bool
) -> object:
    """Cast a value; ANSI raises on failure, legacy yields NULL/wraps."""
    del source  # dispatch is on the runtime value, as in Spark's Cast
    return cast_kernel(target, ansi)(value)


def spark_cast_reference(
    value: object, source: DataType, target: DataType, *, ansi: bool
) -> object:
    """Uncompiled per-value dispatch; the oracle for the compiled kernels.

    ``spark_cast`` now compiles ``(target, ansi)`` into a closure once
    and applies it per value. This walks the original isinstance ladder
    on every call instead, so a property test can assert the two agree
    on the whole values corpus (see tests/sparklite/test_cast_kernels).
    """
    del source  # dispatch is on the runtime value, as in Spark's Cast
    if value is None:
        return None
    try:
        return _cast(value, target, ansi)
    except (CastError, ArithmeticOverflowError):
        raise
    except (ValueError, TypeError, decimal.InvalidOperation) as exc:
        if ansi:
            raise CastError(value, target.simple_string(), str(exc)) from exc
        return None


def _fail(value: object, target: DataType, reason: str, ansi: bool):
    if ansi:
        raise CastError(value, target.simple_string(), reason)
    return None


def _overflow(value: object, target: DataType, ansi: bool):
    if ansi:
        raise ArithmeticOverflowError(
            f"value {value!r} out of range for {target.simple_string()}"
        )
    return None


def _cast(value: object, target: DataType, ansi: bool) -> object:
    if is_integral(target):
        return _to_integral(value, target, ansi)
    if isinstance(target, (FloatType, DoubleType)):
        return _to_float(value, target, ansi)
    if isinstance(target, DecimalType):
        return _to_decimal(value, target, ansi)
    if isinstance(target, BooleanType):
        return _to_boolean(value, target, ansi)
    if isinstance(target, (StringType, CharType, VarcharType)):
        return _to_string(value)
    if isinstance(target, DateType):
        return _to_date(value, target, ansi)
    if isinstance(target, (TimestampType, TimestampNTZType)):
        return _to_timestamp(value, target, ansi)
    if isinstance(target, BinaryType):
        if isinstance(value, bytes):
            return value
        if isinstance(value, str):
            return value.encode("utf-8")
        return _fail(value, target, "only string casts to binary", ansi)
    if isinstance(target, ArrayType):
        if not isinstance(value, (list, tuple)):
            return _fail(value, target, "not an array", ansi)
        return [
            _cast(v, target.element_type, ansi) if v is not None else None
            for v in value
        ]
    if isinstance(target, MapType):
        if not isinstance(value, dict):
            return _fail(value, target, "not a map", ansi)
        return {
            _cast(k, target.key_type, ansi): (
                _cast(v, target.value_type, ansi) if v is not None else None
            )
            for k, v in value.items()
        }
    if isinstance(target, StructType):
        if isinstance(value, dict):
            items = [value.get(f.name) for f in target.fields]
        elif isinstance(value, (list, tuple)) and len(value) == len(
            target.fields
        ):
            items = list(value)
        else:
            return _fail(value, target, "not a struct", ansi)
        return [
            _cast(v, f.data_type, ansi) if v is not None else None
            for v, f in zip(items, target.fields)
        ]
    return value


def _to_integral(value: object, target: DataType, ansi: bool):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        if target.accepts(value):
            return value
        if ansi:
            return _overflow(value, target, ansi)
        return wrap_integral(value, target)
    if isinstance(value, float):
        if not math.isfinite(value):
            return _overflow(value, target, ansi)
        truncated = int(value)
        if target.accepts(truncated):
            return truncated
        if ansi:
            return _overflow(value, target, ansi)
        return wrap_integral(truncated, target)
    if isinstance(value, decimal.Decimal):
        return _to_integral(int(value), target, ansi)
    if isinstance(value, str):
        try:
            number = int(value.strip())
        except ValueError:
            return _fail(value, target, "malformed integer string", ansi)
        return _to_integral(number, target, ansi)
    return _fail(value, target, f"cannot cast {type(value).__name__}", ansi)


def _to_float(value: object, target: DataType, ansi: bool):
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, decimal.Decimal):
        return float(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in _FLOAT_SPELLINGS:
            return _FLOAT_SPELLINGS[lowered]
        try:
            return float(value)
        except ValueError:
            return _fail(value, target, "malformed float string", ansi)
    return _fail(value, target, f"cannot cast {type(value).__name__}", ansi)


def _to_decimal(value: object, target: DecimalType, ansi: bool):
    if isinstance(value, bool):
        return _fail(value, target, "boolean to decimal", ansi)
    if isinstance(value, decimal.Decimal):
        number = value
    elif isinstance(value, int):
        number = decimal.Decimal(value)
    elif isinstance(value, float):
        if not math.isfinite(value):
            return _overflow(value, target, ansi)
        number = decimal.Decimal(str(value))
    elif isinstance(value, str):
        try:
            number = decimal.Decimal(value.strip())
        except decimal.InvalidOperation:
            return _fail(value, target, "malformed decimal string", ansi)
    else:
        return _fail(value, target, f"cannot cast {type(value).__name__}", ansi)
    quantized = number.quantize(
        decimal.Decimal(1).scaleb(-target.scale),
        rounding=decimal.ROUND_HALF_UP,
        context=decimal.Context(prec=DecimalType.MAX_PRECISION + 4),
    )
    if not target.accepts(quantized):
        return _overflow(value, target, ansi)
    return quantized


def _to_boolean(value: object, target: BooleanType, ansi: bool):
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value != 0
    if isinstance(value, str):
        token = _BOOL_TOKENS.get(value.strip().lower())
        if token is None:
            return _fail(value, target, "not a boolean string", ansi)
        return token
    return _fail(value, target, f"cannot cast {type(value).__name__}", ansi)


def _to_string(value: object) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        return repr(value)
    if isinstance(value, bytes):
        return value.decode("utf-8", errors="replace")
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.isoformat()
    return str(value)


def _to_date(value: object, target: DateType, ansi: bool):
    if isinstance(value, datetime.datetime):
        return value.date()
    if isinstance(value, datetime.date):
        return value
    if isinstance(value, str):
        try:
            return datetime.date.fromisoformat(value.strip())
        except ValueError:
            return _fail(value, target, "malformed date string", ansi)
    return _fail(value, target, f"cannot cast {type(value).__name__}", ansi)


def _to_timestamp(value: object, target: DataType, ansi: bool):
    if isinstance(value, datetime.datetime):
        return value
    if isinstance(value, datetime.date):
        return datetime.datetime(value.year, value.month, value.day)
    if isinstance(value, str):
        try:
            return datetime.datetime.fromisoformat(value.strip())
        except ValueError:
            return _fail(value, target, "malformed timestamp string", ansi)
    return _fail(value, target, f"cannot cast {type(value).__name__}", ansi)


# ---------------------------------------------------------------------------
# Store assignment (the SQL INSERT path)
# ---------------------------------------------------------------------------

_WIDENING_ORDER = ["tinyint", "smallint", "int", "bigint", "float", "double"]


def _is_safe_widening(source: DataType, target: DataType) -> bool:
    if source == target:
        return True
    if isinstance(source, NullType):
        return True
    if source.name in _WIDENING_ORDER and target.name in _WIDENING_ORDER:
        return _WIDENING_ORDER.index(source.name) <= _WIDENING_ORDER.index(
            target.name
        )
    if isinstance(source, DecimalType) and isinstance(target, DecimalType):
        return (
            target.scale >= source.scale
            and target.precision - target.scale
            >= source.precision - source.scale
        )
    if isinstance(source, DateType) and isinstance(
        target, (TimestampType, TimestampNTZType)
    ):
        return True
    if isinstance(
        source, (StringType, CharType, VarcharType)
    ) and isinstance(target, (StringType, CharType, VarcharType)):
        return True
    return False


def store_assign(
    value: object,
    source: DataType,
    target: DataType,
    policy: StoreAssignmentPolicy,
) -> object:
    """Coerce one inserted value to the column type per the policy."""
    return store_assign_kernel(source, target, policy)(value)


def store_assign_reference(
    value: object,
    source: DataType,
    target: DataType,
    policy: StoreAssignmentPolicy,
) -> object:
    """Uncompiled store assignment; the oracle for the compiled kernels."""
    if isinstance(source, NullType) or value is None:
        return None
    if policy is StoreAssignmentPolicy.STRICT:
        if not _is_safe_widening(source, target):
            raise AnalysisException(
                f"cannot write {source.simple_string()} to column of type "
                f"{target.simple_string()} under strict store assignment"
            )
        return spark_cast_reference(value, source, target, ansi=True)
    if policy is StoreAssignmentPolicy.ANSI:
        if not _ansi_assignable(source, target):
            raise AnalysisException(
                f"cannot safely cast {source.simple_string()} to "
                f"{target.simple_string()} under ANSI store assignment"
            )
        return spark_cast_reference(value, source, target, ansi=True)
    return spark_cast_reference(value, source, target, ansi=False)


def _ansi_assignable(source: DataType, target: DataType) -> bool:
    """ANSI store assignment forbids 'unreasonable' conversions."""
    if source == target or isinstance(source, NullType):
        return True
    if is_numeric(source) and is_numeric(target):
        return True
    string_like = (StringType, CharType, VarcharType)
    if isinstance(source, string_like) and isinstance(target, string_like):
        return True
    if is_numeric(source) and isinstance(target, string_like):
        return True
    if isinstance(source, BooleanType) and isinstance(target, string_like):
        return True
    if isinstance(source, DateType) and isinstance(
        target, (TimestampType, TimestampNTZType, StringType)
    ):
        return True
    timestampish = (TimestampType, TimestampNTZType)
    if isinstance(source, timestampish) and isinstance(
        target, timestampish + (DateType, StringType)
    ):
        return True
    if isinstance(source, ArrayType) and isinstance(target, ArrayType):
        return _ansi_assignable(source.element_type, target.element_type)
    if isinstance(source, MapType) and isinstance(target, MapType):
        return _ansi_assignable(
            source.key_type, target.key_type
        ) and _ansi_assignable(source.value_type, target.value_type)
    if isinstance(source, StructType) and isinstance(target, StructType):
        return len(source.fields) == len(target.fields) and all(
            _ansi_assignable(s.data_type, t.data_type)
            for s, t in zip(source.fields, target.fields)
        )
    return False


# ---------------------------------------------------------------------------
# Compiled cast kernels
# ---------------------------------------------------------------------------
#
# The §8 harness applies the same handful of casts hundreds of thousands
# of times; the per-value cost was never the conversion itself but the
# isinstance ladder re-deciding *which* conversion on every call. These
# kernels run the ladder once per distinct ``(target, ansi)`` /
# ``(source, target, policy)`` and hand back a closure that only does
# the conversion. All ``DataType``s are frozen dataclasses, so they are
# valid ``lru_cache`` keys; the bound guards adversarial corpora with
# unbounded distinct decimal(p,s)/char(n) shapes.

CastKernel = Callable[[object], object]

_KERNEL_CACHE_SIZE = 1024


@functools.lru_cache(maxsize=_KERNEL_CACHE_SIZE)
def cast_kernel(target: DataType, ansi: bool) -> CastKernel:
    """Compile ``spark_cast`` for one ``(target, ansi)`` into a closure."""
    inner = _compile_cast(target, ansi)

    if ansi:

        def kernel(value: object) -> object:
            if value is None:
                return None
            try:
                return inner(value)
            except (CastError, ArithmeticOverflowError):
                raise
            except (ValueError, TypeError, decimal.InvalidOperation) as exc:
                raise CastError(
                    value, target.simple_string(), str(exc)
                ) from exc

        return kernel

    def kernel(value: object) -> object:
        if value is None:
            return None
        try:
            return inner(value)
        except (CastError, ArithmeticOverflowError):
            raise
        except (ValueError, TypeError, decimal.InvalidOperation):
            return None

    return kernel


def _compile_cast(target: DataType, ansi: bool) -> CastKernel:
    """Resolve the ``_cast`` dispatch ladder once for ``target``.

    Branch order mirrors ``_cast`` exactly; nested array/map/struct
    targets compile child kernels recursively, so a deep cast does no
    type dispatch at all at apply time.
    """
    if is_integral(target):
        return lambda value: _to_integral(value, target, ansi)
    if isinstance(target, (FloatType, DoubleType)):
        return lambda value: _to_float(value, target, ansi)
    if isinstance(target, DecimalType):
        return lambda value: _to_decimal(value, target, ansi)
    if isinstance(target, BooleanType):
        return lambda value: _to_boolean(value, target, ansi)
    if isinstance(target, (StringType, CharType, VarcharType)):
        return _to_string
    if isinstance(target, DateType):
        return lambda value: _to_date(value, target, ansi)
    if isinstance(target, (TimestampType, TimestampNTZType)):
        return lambda value: _to_timestamp(value, target, ansi)
    if isinstance(target, BinaryType):

        def to_binary(value: object) -> object:
            if isinstance(value, bytes):
                return value
            if isinstance(value, str):
                return value.encode("utf-8")
            return _fail(value, target, "only string casts to binary", ansi)

        return to_binary
    if isinstance(target, ArrayType):
        element = _compile_cast(target.element_type, ansi)

        def to_array(value: object) -> object:
            if not isinstance(value, (list, tuple)):
                return _fail(value, target, "not an array", ansi)
            return [element(v) if v is not None else None for v in value]

        return to_array
    if isinstance(target, MapType):
        key_kernel = _compile_cast(target.key_type, ansi)
        value_kernel = _compile_cast(target.value_type, ansi)

        def to_map(value: object) -> object:
            if not isinstance(value, dict):
                return _fail(value, target, "not a map", ansi)
            return {
                key_kernel(k): (
                    value_kernel(v) if v is not None else None
                )
                for k, v in value.items()
            }

        return to_map
    if isinstance(target, StructType):
        fields = target.fields
        names = tuple(f.name for f in fields)
        members = tuple(_compile_cast(f.data_type, ansi) for f in fields)

        def to_struct(value: object) -> object:
            if isinstance(value, dict):
                items = [value.get(name) for name in names]
            elif isinstance(value, (list, tuple)) and len(value) == len(
                fields
            ):
                items = list(value)
            else:
                return _fail(value, target, "not a struct", ansi)
            return [
                member(v) if v is not None else None
                for v, member in zip(items, members)
            ]

        return to_struct
    return lambda value: value


def _none_kernel(value: object) -> object:
    return None


def _compile_reject(message: str) -> CastKernel:
    def reject(value: object) -> object:
        if value is None:
            return None
        raise AnalysisException(message)

    return reject


@functools.lru_cache(maxsize=_KERNEL_CACHE_SIZE)
def store_assign_kernel(
    source: DataType, target: DataType, policy: StoreAssignmentPolicy
) -> CastKernel:
    """Compile ``store_assign`` for one ``(source, target, policy)``.

    Policy admissibility (``_is_safe_widening`` / ``_ansi_assignable``)
    is decided once at compile time: inadmissible pairs compile to a
    kernel that raises the pre-built :class:`AnalysisException` message
    (after the NULL short-circuit, which always wins — matching the
    reference, where ``value is None`` is checked before the policy).
    """
    if isinstance(source, NullType):
        return _none_kernel
    if policy is StoreAssignmentPolicy.STRICT:
        if not _is_safe_widening(source, target):
            return _compile_reject(
                f"cannot write {source.simple_string()} to column of type "
                f"{target.simple_string()} under strict store assignment"
            )
        return cast_kernel(target, True)
    if policy is StoreAssignmentPolicy.ANSI:
        if not _ansi_assignable(source, target):
            return _compile_reject(
                f"cannot safely cast {source.simple_string()} to "
                f"{target.simple_string()} under ANSI store assignment"
            )
        return cast_kernel(target, True)
    return cast_kernel(target, False)
