"""The Spark session: SQL interface, DataFrame factory, read/scan path.

The session exposes the two upstream interfaces of the paper's Figure 6
(SparkSQL and DataFrame) over the shared Hive metastore and warehouse.
The two interfaces intentionally differ exactly where the real ones do:

========================  =======================  ======================
behaviour                 SparkSQL path            DataFrame path
========================  =======================  ======================
insert coercion           store assignment          legacy cast
                          (ANSI by default:         (NULL on failure,
                          overflow/invalid raise)   wraparound overflow)
CHAR/VARCHAR length       enforced + CHAR padded    not enforced (#15)
decimal serialization     quantized to scale        unquantized (#2)
invalid DATE literal      raises (#9)               NULL via legacy cast
CHAR padding on read      padded                    raw value
========================  =======================  ======================
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.common.result import QueryResult
from repro.common.row import Row
from repro.common.schema import Field, Schema
from repro.common.types import (
    CharType,
    DataType,
    VarcharType,
    parse_type,
)
from repro.connectors.spark_hive import (
    CreateSpec,
    ResolvedTable,
    SparkHiveConnector,
)
from repro.connectors.transformers import transformer_for
from repro.errors import AnalysisException, QueryError, TableAlreadyExistsError
from repro.faults.core import (
    apply_torn_write,
    fault_point,
    injection_active,
)
from repro.formats import serializer_for
from repro.formats.base import TableData
from repro.formats.orc import HIVE_POSITIONAL_PROPERTY
from repro.formats.textfile import NULL_MARKER
from repro.hivelite.metastore import DEFAULT_DATABASE, HiveMetastore
from repro.hivelite.warehouse import (
    Warehouse,
    parse_partition_dirname,
    partition_dirname,
)
from repro.sparklite.casts import cast_kernel, spark_cast, store_assign
from repro.sparklite.conf import SparkConf
from repro.sparklite.dataframe import DataFrame, dataframe_store_kernel
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    CreateTable,
    DropTable,
    Insert,
    Literal,
    Select,
    Star,
)
from repro.sql.literals import DialectOptions, LiteralEvaluator, TypedValue
from repro.sql.parser import parse_statement
from repro.sql.plancache import PlanCache, PreparedFailure
from repro.storage.filesystem import FileSystem
from repro.storage.namenode import NameNode
from repro.tracing.core import event as trace_event
from repro.tracing.core import span as trace_span

__all__ = ["SparkSession"]


@dataclass(frozen=True)
class _PreparedCreate:
    """CREATE TABLE with the connector analysis already done."""

    spec: CreateSpec

    def execute(self, session: "SparkSession") -> QueryResult:
        session.connector.execute_create(self.spec)
        return session._empty("sparksql")


@dataclass(frozen=True)
class _PreparedInsert:
    """INSERT with evaluation, coercion and serialization done.

    The write itself — truncate-on-overwrite plus appending the segment
    — is the only execute-time work. The blob is valid for as long as
    the dependency fingerprint (the resolved table) holds, which the
    plan cache guarantees.
    """

    resolved: ResolvedTable
    blob: bytes
    partition: str | None
    overwrite: bool

    def execute(self, session: "SparkSession") -> QueryResult:
        with trace_span(
            "spark.warehouse.write",
            system="spark",
            peer_system="hdfs",
            operation="write_segment",
            boundary="spark->hdfs",
        ) as sp:
            if sp is not None:
                sp.attributes.update(
                    table=self.resolved.table.name,
                    fmt=self.resolved.table.storage_format,
                    bytes=len(self.blob),
                    overwrite=self.overwrite,
                )
            blob = self.blob
            action = fault_point(
                "spark->hdfs", "write_segment", ("torn_write",)
            )
            if action is not None and action.kind == "torn_write":
                blob = apply_torn_write(blob, action)
                trace_event("fault.torn_write", bytes_kept=len(blob))
            if self.overwrite:
                session.warehouse.truncate(self.resolved.table, self.partition)
            session.warehouse.write_segment(
                self.resolved.table, blob, self.partition
            )
        return session._empty("sparksql")


@dataclass(frozen=True)
class _PreparedSelect:
    """SELECT with the table resolution done; the scan stays per-call
    (warehouse contents are dynamic, only the resolution is not)."""

    resolved: ResolvedTable
    statement: Select

    def execute(self, session: "SparkSession") -> QueryResult:
        return session._execute_select(self.resolved, self.statement)


class SparkSession:
    """One Spark application attached to a metastore and filesystem."""

    def __init__(
        self,
        metastore: HiveMetastore,
        filesystem: FileSystem,
        conf: SparkConf | None = None,
        database: str = DEFAULT_DATABASE,
    ) -> None:
        self.metastore = metastore
        self.filesystem = filesystem
        self.conf = conf or SparkConf()
        self.database = database
        self.connector = SparkHiveConnector(metastore, self.conf)
        self.warehouse = Warehouse(filesystem)
        self.plan_cache = PlanCache()

    @classmethod
    def local(cls, conf: SparkConf | None = None) -> "SparkSession":
        """A self-contained session with a fresh metastore + filesystem."""
        return cls(HiveMetastore(), FileSystem(NameNode()), conf)

    # -- SQL interface -----------------------------------------------------

    def sql(self, text: str) -> QueryResult:
        with trace_span(
            "spark.sql", system="spark", operation="sql"
        ) as sp:
            if sp is not None:
                sp.attributes["statement"] = text[:120]
            statement = parse_statement(text)
            if isinstance(statement, DropTable):
                # DROP is pure side effect; there is no analysis to reuse.
                return self._sql_drop(statement)
            if not self.conf.plan_cache_enabled or injection_active():
                # under fault injection, cached-plan replay would skip
                # prepare-time fault points on hits and make the fault
                # schedule depend on cache history (which varies with
                # worker count); cache on/off is byte-identical (PR 2),
                # so bypassing is outcome-neutral
                return self._sql_uncached(statement)
            fingerprint = self.conf.fingerprint()
            version = self.metastore.catalog_version
            plan = self.plan_cache.lookup(
                text, fingerprint, version, self._dependency_state
            )
            if plan is None:
                trace_event(
                    "plan_cache.miss", conf_fingerprint=str(fingerprint)
                )
                plan, deps = self._prepare(statement)
                self.plan_cache.store(text, fingerprint, version, deps, plan)
            else:
                trace_event(
                    "plan_cache.hit", conf_fingerprint=str(fingerprint)
                )
            return plan.execute(self)

    def _sql_uncached(self, statement) -> QueryResult:
        if isinstance(statement, CreateTable):
            return self._sql_create(statement)
        if isinstance(statement, Insert):
            return self._sql_insert(statement)
        if isinstance(statement, Select):
            return self._sql_select(statement)
        raise QueryError(f"unsupported statement {statement!r}")

    # -- prepared execution ------------------------------------------------

    def _dependency_state(self, dep_key: tuple[str, str]):
        database, name = dep_key
        return self.metastore.table_state(name, database)

    def _table_deps(self, name: str):
        dep_key = (self.database, name)
        return ((dep_key, self._dependency_state(dep_key)),)

    def _prepare(self, statement):
        """Analyze one statement into a (plan, dependency fingerprints)
        pair; deterministic analysis failures become cacheable
        :class:`PreparedFailure` plans."""
        if isinstance(statement, CreateTable):
            return self._prepare_create(statement)
        if isinstance(statement, Insert):
            return self._prepare_insert(statement)
        if isinstance(statement, Select):
            return self._prepare_select(statement)
        raise QueryError(f"unsupported statement {statement!r}")

    def _prepare_create(self, statement: CreateTable):
        # CREATE analysis reads no catalog state: existence is checked
        # by the metastore at execute time, so the dep set is empty.
        try:
            spec = self._analyze_create(statement)
        except Exception as exc:
            return PreparedFailure(exc), ()
        return _PreparedCreate(spec), ()

    def _prepare_insert(self, statement: Insert):
        deps = self._table_deps(statement.table)
        try:
            resolved, rows, partition = self._analyze_insert(statement)
            blob = self._encode_rows(resolved, rows)
        except Exception as exc:
            return PreparedFailure(exc), deps
        return (
            _PreparedInsert(resolved, blob, partition, statement.overwrite),
            deps,
        )

    def _prepare_select(self, statement: Select):
        deps = self._table_deps(statement.table)
        try:
            resolved = self.connector.resolve(statement.table, self.database)
        except Exception as exc:
            return PreparedFailure(exc), deps
        return _PreparedSelect(resolved, statement), deps

    def _evaluator(self) -> LiteralEvaluator:
        ansi = bool(self.conf.get("spark.sql.ansi.enabled"))

        def cast_fn(value, source, target):
            return spark_cast(value, source, target, ansi=ansi)

        return LiteralEvaluator(
            DialectOptions(
                name="spark",
                fractional_literal="decimal",
                strict_datetime_literals=self.conf.strict_datetime_literals,
                cast_fn=cast_fn,
            )
        )

    def _analyze_create(self, statement: CreateTable) -> CreateSpec:
        declared = Schema(
            tuple(
                Field(col.name, parse_type(col.type_text))
                for col in statement.columns
            ),
            case_sensitive=True,
        )
        partition_schema = Schema(
            tuple(
                Field(col.name, parse_type(col.type_text))
                for col in statement.partition_columns
            ),
            case_sensitive=True,
        )
        fmt = statement.stored_as or str(
            self.conf.get("spark.sql.sources.default")
        )
        return self.connector.prepare_create(
            statement.table,
            declared,
            fmt,
            database=self.database,
            datasource=statement.datasource,
            if_not_exists=statement.if_not_exists,
            extra_properties=dict(statement.properties),
            partition_schema=partition_schema,
        )

    def _sql_create(self, statement: CreateTable) -> QueryResult:
        self.connector.execute_create(self._analyze_create(statement))
        return self._empty("sparksql")

    def _sql_drop(self, statement: DropTable) -> QueryResult:
        if self.metastore.table_exists(statement.table, self.database):
            table = self.metastore.get_table(statement.table, self.database)
            self.warehouse.drop_data(table)
        self.metastore.drop_table(
            statement.table, self.database, if_exists=statement.if_exists
        )
        return self._empty("sparksql")

    def _analyze_insert(
        self, statement: Insert
    ) -> tuple[ResolvedTable, list[tuple], str | None]:
        resolved = self.connector.resolve(statement.table, self.database)
        evaluator = self._evaluator()
        policy = self.conf.store_assignment_policy
        trace_event(
            "cast.store_assignment",
            policy=str(policy),
            ansi=bool(self.conf.get("spark.sql.ansi.enabled")),
        )
        partition = self._resolve_partition_spec(
            resolved.table, statement, evaluator, policy
        )
        # hoisted out of the row loop: multi-row VALUES share one target
        # schema, so per-row re-derivation is pure overhead under lanes
        column_types = [f.data_type for f in resolved.schema.fields]
        arity = len(resolved.schema)
        rows = []
        for expressions in statement.rows:
            if len(expressions) != arity:
                raise AnalysisException(
                    f"INSERT arity {len(expressions)} != table arity {arity}"
                )
            values = []
            for expr, column_type in zip(expressions, column_types):
                typed = evaluator.evaluate(expr)
                values.append(self._sql_store(typed, column_type, policy))
            rows.append(tuple(values))
        return resolved, rows, partition

    def _sql_insert(self, statement: Insert) -> QueryResult:
        resolved, rows, partition = self._analyze_insert(statement)
        self._write_rows(
            resolved, rows, overwrite=statement.overwrite, partition=partition
        )
        return self._empty("sparksql")

    def _resolve_partition_spec(
        self, table, statement: Insert, evaluator, policy
    ) -> str | None:
        if not table.is_partitioned:
            if statement.partition_spec:
                raise AnalysisException(
                    f"table {table.name} is not partitioned"
                )
            return None
        spec = {
            name.lower(): expr for name, expr in statement.partition_spec
        }
        if set(spec) != set(table.partition_schema.names()):
            raise AnalysisException(
                f"INSERT must name every partition column "
                f"{table.partition_schema.names()}, got {sorted(spec)}"
            )
        parts = []
        for column in table.partition_schema.fields:
            typed = evaluator.evaluate(spec[column.name])
            value = store_assign(
                typed.value, typed.data_type, column.data_type, policy
            )
            parts.append(partition_dirname(column.name, value))
        return "/".join(parts)

    def _sql_store(self, typed: TypedValue, target: DataType, policy) -> object:
        """SQL INSERT coercion: char/varchar enforcement + store assignment."""
        if isinstance(target, (CharType, VarcharType)):
            if typed.value is None:
                return None
            text = store_assign(typed.value, typed.data_type, target, policy)
            if text is None:
                return None
            if len(text) > target.length:
                raise AnalysisException(
                    f"input string {text!r} exceeds "
                    f"{target.simple_string()} type length limitation"
                )
            if isinstance(target, CharType):
                return target.pad(text)
            return text
        return store_assign(typed.value, typed.data_type, target, policy)

    def _sql_select(self, statement: Select) -> QueryResult:
        resolved = self.connector.resolve(statement.table, self.database)
        return self._execute_select(resolved, statement)

    def _execute_select(
        self, resolved: ResolvedTable, statement: Select
    ) -> QueryResult:
        schema, rows = self._scan(resolved, interface="sparksql")
        rows = self._apply_where(rows, schema, statement.where)
        schema, rows = self._project(statement, schema, rows)
        return QueryResult(
            schema=schema,
            rows=tuple(rows),
            warnings=resolved.warnings,
            interface="sparksql",
        )

    # -- DataFrame interface ---------------------------------------------------

    def create_dataframe(
        self, data: list[tuple] | list[list], schema: Schema
    ) -> DataFrame:
        """Build a DataFrame, coercing cells the DataFrame way (legacy)."""
        kernels = [
            dataframe_store_kernel(field.data_type)
            for field in schema.fields
        ]
        arity = len(schema)
        rows = []
        for record in data:
            if len(record) != arity:
                raise AnalysisException(
                    f"row arity {len(record)} != schema arity {arity}"
                )
            values = [
                kernel(value) for value, kernel in zip(record, kernels)
            ]
            rows.append(Row(values, schema))
        return DataFrame(self, schema, rows)

    def table(self, name: str) -> DataFrame:
        """Read a table through the DataFrame interface."""
        result = self.read_table(name, interface="dataframe")
        return DataFrame(self, result.schema, list(result.rows))

    def read_table(self, name: str, interface: str = "dataframe") -> QueryResult:
        resolved = self.connector.resolve(name, self.database)
        schema, rows = self._scan(resolved, interface=interface)
        return QueryResult(
            schema=schema,
            rows=tuple(rows),
            warnings=resolved.warnings,
            interface=interface,
        )

    # hooks used by DataFrameWriter ------------------------------------------

    def _create_table_for_dataframe(
        self, name: str, schema: Schema, fmt: str, mode: str
    ) -> None:
        exists = self.metastore.table_exists(name, self.database)
        if exists and mode == "errorifexists":
            raise TableAlreadyExistsError(f"table {name} exists")
        if exists and mode == "overwrite":
            table = self.metastore.get_table(name, self.database)
            self.warehouse.drop_data(table)
            self.metastore.drop_table(name, self.database)
            exists = False
        if not exists:
            self.connector.create_table(
                name,
                schema,
                fmt,
                database=self.database,
                datasource=True,
            )

    def _dataframe_insert(
        self, name: str, dataframe: DataFrame, overwrite: bool
    ) -> None:
        resolved = self.connector.resolve(name, self.database)
        if resolved.table.is_partitioned:
            self._dataframe_insert_partitioned(resolved, dataframe, overwrite)
            return
        if len(dataframe.schema) != len(resolved.schema):
            raise AnalysisException(
                f"DataFrame arity {len(dataframe.schema)} != table arity "
                f"{len(resolved.schema)}"
            )
        kernels = [
            dataframe_store_kernel(field.data_type)
            for field in resolved.schema.fields
        ]
        rows = []
        for row in dataframe.collect():
            values = [kernel(value) for value, kernel in zip(row, kernels)]
            rows.append(tuple(values))
        self._write_rows(resolved, rows, overwrite=overwrite)

    def _dataframe_insert_partitioned(
        self, resolved: ResolvedTable, dataframe: DataFrame, overwrite: bool
    ) -> None:
        """``insertInto`` a partitioned table: as in Spark, the partition
        values arrive as the frame's *trailing* columns."""
        partition_schema = resolved.table.partition_schema
        expected = len(resolved.schema) + len(partition_schema)
        if len(dataframe.schema) != expected:
            raise AnalysisException(
                f"DataFrame arity {len(dataframe.schema)} != data columns "
                f"{len(resolved.schema)} + partition columns "
                f"{len(partition_schema)}"
            )
        by_partition: dict[str, list[tuple]] = {}
        split = len(resolved.schema)
        data_kernels = [
            dataframe_store_kernel(field.data_type)
            for field in resolved.schema.fields
        ]
        partition_kernels = [
            dataframe_store_kernel(field.data_type)
            for field in partition_schema.fields
        ]
        for row in dataframe.collect():
            values = tuple(
                kernel(value)
                for value, kernel in zip(row[:split], data_kernels)
            )
            partition_values = [
                kernel(value)
                for value, kernel in zip(row[split:], partition_kernels)
            ]
            dirname = "/".join(
                partition_dirname(field.name, value)
                for field, value in zip(
                    partition_schema.fields, partition_values
                )
            )
            by_partition.setdefault(dirname, []).append(values)
        for dirname, rows in sorted(by_partition.items()):
            self._write_rows(
                resolved, rows, overwrite=overwrite, partition=dirname
            )

    # -- shared write/scan machinery ----------------------------------------------

    def _encode_rows(self, resolved: ResolvedTable, rows: list[tuple]) -> bytes:
        """Serialize rows for the table's format, as a traced SerDe call."""
        serializer = serializer_for(resolved.table.storage_format)
        with trace_span(
            "spark.serde.encode",
            system="spark",
            peer_system="serde",
            operation="encode",
            boundary="spark->serde",
        ) as sp:
            fault_point("spark->serde", "encode")
            blob = serializer.write(resolved.schema, rows, {"writer": "spark"})
            if sp is not None:
                sp.attributes.update(
                    fmt=resolved.table.storage_format,
                    rows=len(rows),
                    bytes=len(blob),
                )
            return blob

    def _write_rows(
        self,
        resolved: ResolvedTable,
        rows: list[tuple],
        overwrite: bool,
        partition: str | None = None,
    ) -> None:
        blob = self._encode_rows(resolved, rows)
        with trace_span(
            "spark.warehouse.write",
            system="spark",
            peer_system="hdfs",
            operation="write_segment",
            boundary="spark->hdfs",
        ) as sp:
            if sp is not None:
                sp.attributes.update(
                    table=resolved.table.name,
                    fmt=resolved.table.storage_format,
                    bytes=len(blob),
                    overwrite=overwrite,
                )
            action = fault_point(
                "spark->hdfs", "write_segment", ("torn_write",)
            )
            if action is not None and action.kind == "torn_write":
                blob = apply_torn_write(blob, action)
                trace_event("fault.torn_write", bytes_kept=len(blob))
            if overwrite:
                self.warehouse.truncate(resolved.table, partition)
            self.warehouse.write_segment(resolved.table, blob, partition)

    def _scan(
        self, resolved: ResolvedTable, interface: str
    ) -> tuple[Schema, list[Row]]:
        """Scan the table; returns the result schema (which includes
        typed partition columns for partitioned tables) and the rows."""
        if resolved.table.is_partitioned:
            return self._scan_partitioned(resolved, interface)
        with trace_span(
            "spark.warehouse.scan",
            system="spark",
            peer_system="hdfs",
            operation="read_segments",
            boundary="spark->hdfs",
        ) as sp:
            fault_point("spark->hdfs", "read_segments")
            blobs = list(self.warehouse.read_segments(resolved.table))
            if sp is not None:
                sp.attributes.update(
                    table=resolved.table.name, segments=len(blobs)
                )
        return resolved.schema, self._scan_segments(
            resolved, interface, blobs
        )

    def _scan_partitioned(
        self, resolved: ResolvedTable, interface: str
    ) -> tuple[Schema, list[Row]]:
        column = resolved.table.partition_schema.fields[0]
        with trace_span(
            "spark.warehouse.scan",
            system="spark",
            peer_system="hdfs",
            operation="read_partitioned_segments",
            boundary="spark->hdfs",
        ) as sp:
            fault_point("spark->hdfs", "read_partitioned_segments")
            segments = list(
                self.warehouse.read_partitioned_segments(resolved.table)
            )
            if sp is not None:
                sp.attributes.update(
                    table=resolved.table.name, segments=len(segments)
                )
        texts = []
        for dirname, _ in segments:
            _, text = parse_partition_dirname(dirname)
            texts.append(text)
        partition_type, converted = self._type_partition_values(texts)
        schema = Schema(
            resolved.schema.fields + (Field(column.name, partition_type),),
            case_sensitive=resolved.schema.case_sensitive,
        )
        rows: list[Row] = []
        for (dirname, blob), value in zip(segments, converted):
            for base in self._scan_segments(resolved, interface, [blob]):
                rows.append(Row(list(base) + [value], schema))
        return schema, rows

    def _type_partition_values(
        self, texts: list[str]
    ) -> tuple[DataType, list[object]]:
        """Spark's partition typing: infer from the directory strings.

        With inference enabled (the default), '01' becomes the INT 1 —
        losing the leading zero Hive would have preserved. With it
        disabled, partition values are plain strings.
        """
        if self.conf.partition_type_inference and texts:
            try:
                return parse_type("int"), [int(t, 10) for t in texts]
            except ValueError:
                pass
            try:
                import datetime

                return parse_type("date"), [
                    datetime.date.fromisoformat(t) for t in texts
                ]
            except ValueError:
                pass
        return parse_type("string"), list(texts)

    def _scan_segments(
        self, resolved: ResolvedTable, interface: str, blobs
    ) -> list[Row]:
        serializer = serializer_for(resolved.table.storage_format)
        pad_chars = (
            interface == "sparksql" and not self.conf.char_varchar_as_string
        )
        plan_key = (
            resolved.schema,
            pad_chars,
            self.conf.case_sensitive,
            self.conf.legacy_orc_positional_names,
        )
        out: list[Row] = []
        for blob in blobs:
            with trace_span(
                "spark.serde.decode",
                system="spark",
                peer_system="serde",
                operation="decode",
                boundary="spark->serde",
            ) as sp:
                fault_point("spark->serde", "decode")
                data = serializer.read(blob)
                if sp is not None:
                    sp.attributes.update(
                        fmt=resolved.table.storage_format,
                        bytes=len(blob),
                        rows=len(data.rows),
                    )
            # decoded blobs are shared, so the per-blob column plan is
            # memoized on the TableData, keyed by everything it reads
            # from the session (schema + the conf switches involved)
            plans = data.__dict__.get("_scan_plans")
            if plans is None:
                plans = {}
                object.__setattr__(data, "_scan_plans", plans)
            columns = plans.get(plan_key)
            if columns is None:
                columns = self._scan_columns(data, resolved.schema, pad_chars)
                plans[plan_key] = columns
            for physical_row in data.rows:
                values = []
                for physical_index, transform, finish in columns:
                    if physical_index is None or transform is None:
                        values.append(None)
                        continue
                    raw = physical_row[physical_index]
                    value = None if raw is None else transform(raw)
                    if finish is not None:
                        value = finish(value)
                    values.append(value)
                out.append(Row(values, resolved.schema))
        return out

    def _scan_columns(
        self, data: TableData, expected: Schema, pad_chars: bool
    ) -> list[tuple]:
        """Resolve (physical index, transform, finisher) per column."""
        mapping = self._column_mapping(data, expected)
        columns: list[tuple] = []
        for field, physical_index in zip(expected.fields, mapping):
            if physical_index is None:
                columns.append((None, None, None))
                continue
            if data.format_name == "text":
                # text rows are strings; Spark parses them with the
                # (lenient) legacy cast, like its Hive text scan
                transform = _text_cell_transform(field.data_type)
            else:
                physical = data.physical_schema.fields[physical_index]
                transform = transformer_for(
                    physical.data_type,
                    field.data_type,
                    data.format_name,
                )
            finish = (
                _char_pad_finisher(field.data_type)
                if pad_chars and isinstance(field.data_type, CharType)
                else None
            )
            columns.append((physical_index, transform, finish))
        return columns

    def _column_mapping(
        self, data: TableData, expected: Schema
    ) -> list[int | None]:
        """Physical column index for each expected column."""
        physical_names = data.physical_schema.names()
        hive_positional = (
            data.properties.get(HIVE_POSITIONAL_PROPERTY) == "true"
        )
        if hive_positional and not self.conf.legacy_orc_positional_names:
            # modern Spark: Hive-written ORC resolves by position
            return [
                index if index < len(physical_names) else None
                for index in range(len(expected))
            ]
        # name-based resolution (also the pre-fix SPARK-21686 behaviour
        # for Hive-written ORC when legacy_orc_positional_names is set:
        # `_col0` never matches real names, so every column reads NULL)
        mapping: list[int | None] = []
        case_sensitive = self.conf.case_sensitive
        for field in expected.fields:
            found = None
            for index, name in enumerate(physical_names):
                matches = (
                    name == field.name
                    if case_sensitive
                    else name.lower() == field.name.lower()
                )
                if matches:
                    found = index
                    break
            mapping.append(found)
        return mapping

    # -- SELECT helpers --------------------------------------------------------

    def _apply_where(
        self, rows: list[Row], schema: Schema, where: Comparison | None
    ) -> list[Row]:
        if where is None:
            return rows
        if not isinstance(where.left, ColumnRef) or not isinstance(
            where.right, Literal
        ):
            raise QueryError("WHERE supports `column <op> literal` only")
        index = self._resolve_column(schema, where.left.name)
        target = self._evaluator().evaluate(where.right).value
        return [row for row in rows if _compare(row[index], where.op, target)]

    def _project(
        self, statement: Select, schema: Schema, rows: list[Row]
    ) -> tuple[Schema, list[Row]]:
        if len(statement.projections) == 1 and isinstance(
            statement.projections[0], Star
        ):
            return schema, rows
        indices = []
        fields = []
        for projection in statement.projections:
            if not isinstance(projection, ColumnRef):
                raise QueryError("projections must be columns or *")
            index = self._resolve_column(schema, projection.name)
            indices.append(index)
            fields.append(schema.fields[index])
        projected = Schema(tuple(fields), schema.case_sensitive)
        return projected, [
            Row([row[i] for i in indices], projected) for row in rows
        ]

    def _resolve_column(self, schema: Schema, name: str) -> int:
        for index, field in enumerate(schema.fields):
            if self.conf.case_sensitive:
                if field.name == name:
                    return index
            elif field.name.lower() == name.lower():
                return index
        raise AnalysisException(
            f"cannot resolve column {name!r} among {schema.names()}"
        )

    def _empty(self, interface: str) -> QueryResult:
        return QueryResult(schema=Schema(()), interface=interface)


@functools.lru_cache(maxsize=1024)
def _text_cell_transform(expected: DataType):
    kernel = cast_kernel(expected, False)

    def transform(raw: object) -> object:
        if raw == NULL_MARKER or raw is None:
            return None
        return kernel(raw)

    return transform


@functools.lru_cache(maxsize=1024)
def _char_pad_finisher(dtype: CharType):
    def finish(value: object) -> object:
        if isinstance(value, str):
            return dtype.pad(value)
        return value

    return finish


def _compare(value: object, op: str, target: object) -> bool:
    if value is None or target is None:
        return False
    try:
        return {
            "=": value == target,
            "<>": value != target,
            "!=": value != target,
            "<": value < target,
            ">": value > target,
            "<=": value <= target,
            ">=": value >= target,
        }[op]
    except TypeError:
        return False
