"""Spark configuration surface.

§8.2 of the paper notes that SparkSQL alone has 350+ configuration
parameters and that 8 of the 15 discrepancies can only be "resolved" by
non-default configuration. We declare the parameters that the
discrepancy mechanisms actually read, plus a representative sample of
the surrounding surface, all on top of the provenance-tracking
:class:`~repro.common.config.Configuration`.
"""

from __future__ import annotations

import enum

from repro.common.config import (
    ConfigKey,
    Configuration,
    parse_bool,
    parse_duration_ms,
    parse_int,
    parse_memory_mb,
)

__all__ = ["StoreAssignmentPolicy", "SparkConf", "SPARK_CONFIG_KEYS"]


class StoreAssignmentPolicy(enum.Enum):
    """``spark.sql.storeAssignmentPolicy`` — how SQL INSERT coerces."""

    ANSI = "ansi"
    LEGACY = "legacy"
    STRICT = "strict"


SPARK_CONFIG_KEYS: list[ConfigKey] = [
    # --- keys the §8 discrepancy mechanisms read -------------------------
    ConfigKey(
        "spark.sql.storeAssignmentPolicy",
        default="ansi",
        doc="Coercion policy for SQL INSERT (ansi/legacy/strict). "
        "Setting 'legacy' resolves discrepancies #5/#10/#11/#12 (SPARK-40439).",
    ),
    ConfigKey(
        "spark.sql.ansi.enabled",
        default=False,
        parser=parse_bool,
        doc="ANSI SQL mode for expressions and literals.",
    ),
    ConfigKey(
        "spark.sql.caseSensitive",
        default=False,
        parser=parse_bool,
        doc="Whether identifier resolution is case sensitive.",
    ),
    ConfigKey(
        "spark.sql.legacy.charVarcharAsString",
        default=False,
        parser=parse_bool,
        doc="Treat CHAR/VARCHAR as plain STRING (resolves discrepancy #13).",
    ),
    ConfigKey(
        "spark.sql.hive.caseSensitiveInferenceMode",
        default="INFER_AND_SAVE",
        doc="Recover a case-sensitive schema for Hive-serde tables; only "
        "effective for ORC and Parquet (§8.2 'exposing internal "
        "configurations').",
    ),
    ConfigKey(
        "spark.sql.timestampType",
        default="TIMESTAMP_LTZ",
        doc="Type Spark assigns to metastore TIMESTAMP columns "
        "(TIMESTAMP_NTZ resolves discrepancy #8 / SPARK-40616).",
    ),
    ConfigKey(
        "spark.sql.legacy.timeParserPolicy",
        default="EXCEPTION",
        doc="How SQL date/timestamp literals treat malformed input: "
        "EXCEPTION raises, LEGACY degrades to NULL (resolves "
        "discrepancy #9 / SPARK-40525).",
    ),
    ConfigKey(
        "spark.sql.legacy.orc.positionalNames",
        default=False,
        parser=parse_bool,
        doc="Replays the pre-fix SPARK-21686 behaviour: resolve ORC "
        "columns strictly by name even for Hive-written files.",
    ),
    ConfigKey(
        "spark.sql.sources.default",
        default="parquet",
        doc="Default datasource format for saveAsTable.",
    ),
    ConfigKey(
        "spark.sql.sources.partitionColumnTypeInference.enabled",
        default=True,
        parser=parse_bool,
        doc="Infer partition column types from the directory values "
        "('01' becomes the INT 1) instead of keeping strings — a "
        "classic Address/naming discrepancy against Hive, which types "
        "partition values by the declared column.",
    ),
    ConfigKey("spark.sql.warehouse.dir", default="/warehouse"),
    ConfigKey("spark.sql.session.timeZone", default="UTC"),
    ConfigKey(
        "repro.plan.cache.enabled",
        default=True,
        parser=parse_bool,
        doc="Cache analyzed statement plans per session, keyed on the "
        "session configuration and validated against the metastore "
        "catalog version. Disable to force full re-analysis per query.",
    ),
    # --- representative surrounding surface ------------------------------
    ConfigKey("spark.app.name", default="repro"),
    ConfigKey("spark.master", default="local[*]"),
    ConfigKey("spark.sql.shuffle.partitions", default=200, parser=parse_int),
    ConfigKey("spark.sql.adaptive.enabled", default=True, parser=parse_bool),
    ConfigKey(
        "spark.sql.files.maxPartitionBytes",
        default=128,
        parser=parse_memory_mb,
    ),
    ConfigKey(
        "spark.sql.hive.convertMetastoreOrc", default=True, parser=parse_bool
    ),
    ConfigKey(
        "spark.sql.hive.convertMetastoreParquet",
        default=True,
        parser=parse_bool,
    ),
    ConfigKey("spark.sql.avro.compression.codec", default="snappy"),
    ConfigKey(
        "spark.sql.decimalOperations.allowPrecisionLoss",
        default=True,
        parser=parse_bool,
    ),
    ConfigKey("spark.executor.memory", default=1024, parser=parse_memory_mb),
    ConfigKey("spark.executor.cores", default=1, parser=parse_int),
    ConfigKey("spark.driver.memory", default=1024, parser=parse_memory_mb),
    ConfigKey("spark.yarn.am.memory", default=512, parser=parse_memory_mb),
    ConfigKey("spark.yarn.queue", default="default"),
    ConfigKey(
        "spark.network.timeout", default=120_000, parser=parse_duration_ms
    ),
    ConfigKey(
        "spark.yarn.am.waitTime", default=100_000, parser=parse_duration_ms
    ),
    ConfigKey("spark.yarn.keytab", default=None),
    ConfigKey("spark.yarn.principal", default=None),
]


class SparkConf(Configuration):
    """A Spark session configuration with all keys pre-declared."""

    def __init__(self) -> None:
        super().__init__(system="spark")
        self.declare_all(SPARK_CONFIG_KEYS)

    # convenience accessors used across the engine -----------------------

    @property
    def store_assignment_policy(self) -> StoreAssignmentPolicy:
        raw = str(self.get("spark.sql.storeAssignmentPolicy")).lower()
        return StoreAssignmentPolicy(raw)

    @property
    def case_sensitive(self) -> bool:
        return bool(self.get("spark.sql.caseSensitive"))

    @property
    def char_varchar_as_string(self) -> bool:
        return bool(self.get("spark.sql.legacy.charVarcharAsString"))

    @property
    def case_sensitive_inference_mode(self) -> str:
        return str(self.get("spark.sql.hive.caseSensitiveInferenceMode"))

    @property
    def timestamp_type(self) -> str:
        return str(self.get("spark.sql.timestampType")).upper()

    @property
    def strict_datetime_literals(self) -> bool:
        return str(self.get("spark.sql.legacy.timeParserPolicy")).upper() != (
            "LEGACY"
        )

    @property
    def partition_type_inference(self) -> bool:
        return bool(
            self.get("spark.sql.sources.partitionColumnTypeInference.enabled")
        )

    @property
    def legacy_orc_positional_names(self) -> bool:
        return bool(self.get("spark.sql.legacy.orc.positionalNames"))

    @property
    def plan_cache_enabled(self) -> bool:
        return bool(self.get("repro.plan.cache.enabled"))

    @property
    def warehouse_dir(self) -> str:
        return str(self.get("spark.sql.warehouse.dir"))
