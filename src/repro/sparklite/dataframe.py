"""The DataFrame interface.

The DataFrame write path deliberately has *different* coercion behaviour
from the SparkSQL path (legacy cast, no char/varchar enforcement, ad-hoc
decimal serialization), because that asymmetry between the two
interfaces of the same system is what the paper's Differential oracle
keys on (§8.1, Figure 6).
"""

from __future__ import annotations

import decimal
import functools
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.row import Row
from repro.common.schema import Schema
from repro.common.types import (
    CharType,
    DataType,
    DecimalType,
    StringType,
    VarcharType,
)
from repro.errors import AnalysisException
from repro.sparklite.casts import cast_kernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sparklite.session import SparkSession

__all__ = [
    "DataFrame",
    "DataFrameWriter",
    "dataframe_store_kernel",
    "dataframe_store_value",
]


@functools.lru_cache(maxsize=1024)
def dataframe_store_kernel(target: DataType) -> Callable[[object], object]:
    """Compile the DataFrame-path coercion for one column type.

    * legacy cast semantics: NULL on failure, two's-complement wrap on
      integral overflow (vs the SQL path's ANSI errors — §8.2's
      "inconsistent error behaviour" family);
    * CHAR/VARCHAR are treated as plain strings: **no** length
      enforcement, **no** padding (SPARK-40630, discrepancy #15);
    * decimals that fit their declared precision are stored *unquantized*
      — the ad-hoc serialization behind SPARK-39158 (discrepancy #2).
    """
    if isinstance(target, (CharType, VarcharType)):
        return cast_kernel(StringType(), False)
    if isinstance(target, DecimalType):
        quantize = cast_kernel(target, False)

        def decimal_kernel(value: object) -> object:
            if value is None:
                return None
            if isinstance(value, decimal.Decimal):
                if quantize(value) is None:
                    return None
                return value  # fits, keep original scale (unquantized)
            return quantize(value)

        return decimal_kernel
    return cast_kernel(target, False)


def dataframe_store_value(value: object, target: DataType) -> object:
    """Coerce one DataFrame cell to a column type, the DataFrame way."""
    return dataframe_store_kernel(target)(value)


class DataFrame:
    """An eagerly-materialized, schema-carrying collection of rows."""

    def __init__(
        self, session: "SparkSession", schema: Schema, rows: list[Row]
    ) -> None:
        self._session = session
        self._schema = schema
        self._rows = [
            row if isinstance(row, Row) else Row(row, schema) for row in rows
        ]

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def write(self) -> "DataFrameWriter":
        return DataFrameWriter(self)

    def collect(self) -> list[Row]:
        return list(self._rows)

    def count(self) -> int:
        return len(self._rows)

    def select(self, *names: str) -> "DataFrame":
        indices = [self._schema.index_of(name) for name in names]
        fields = tuple(self._schema.fields[i] for i in indices)
        schema = Schema(fields, self._schema.case_sensitive)
        rows = [
            Row([row[i] for i in indices], schema) for row in self._rows
        ]
        return DataFrame(self._session, schema, rows)

    def filter(self, predicate) -> "DataFrame":
        rows = [row for row in self._rows if predicate(row)]
        return DataFrame(self._session, self._schema, rows)

    def to_result(self):
        """View as a :class:`QueryResult` (used by the test harness)."""
        from repro.common.result import QueryResult

        return QueryResult(
            schema=self._schema,
            rows=tuple(self._rows),
            interface="dataframe",
        )


@dataclass
class DataFrameWriter:
    """Fluent writer: ``df.write.format("orc").save_as_table("t")``."""

    dataframe: DataFrame
    _format: str | None = None
    _mode: str = "append"

    def format(self, name: str) -> "DataFrameWriter":
        self._format = name.lower()
        return self

    def mode(self, mode: str) -> "DataFrameWriter":
        if mode not in ("append", "overwrite", "errorifexists"):
            raise AnalysisException(f"unknown save mode {mode!r}")
        self._mode = mode
        return self

    def save_as_table(self, name: str) -> None:
        """Create a datasource table from the frame's schema and write."""
        session = self.dataframe._session
        fmt = self._format or str(session.conf.get("spark.sql.sources.default"))
        session._create_table_for_dataframe(
            name, self.dataframe.schema, fmt, mode=self._mode
        )
        self.insert_into(name)

    def insert_into(self, name: str) -> None:
        """Append the frame's rows into an existing table."""
        session = self.dataframe._session
        session._dataframe_insert(
            name, self.dataframe, overwrite=(self._mode == "overwrite")
        )
