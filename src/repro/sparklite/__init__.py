"""Mini Spark: session, SQL + DataFrame interfaces, casts, configuration."""

from repro.sparklite.casts import spark_cast, store_assign, wrap_integral
from repro.sparklite.conf import SPARK_CONFIG_KEYS, SparkConf, StoreAssignmentPolicy
from repro.sparklite.dataframe import DataFrame, DataFrameWriter, dataframe_store_value
from repro.sparklite.session import SparkSession

__all__ = [
    "spark_cast",
    "store_assign",
    "wrap_integral",
    "SPARK_CONFIG_KEYS",
    "SparkConf",
    "StoreAssignmentPolicy",
    "DataFrame",
    "DataFrameWriter",
    "dataframe_store_value",
    "SparkSession",
]
