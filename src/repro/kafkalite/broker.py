"""A single-node Kafka-like broker: topics of partition logs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StreamError
from repro.kafkalite.log import PartitionLog

__all__ = ["Broker"]


@dataclass
class Broker:
    _topics: dict[str, list[PartitionLog]] = field(default_factory=dict)

    def create_topic(self, name: str, partitions: int = 1) -> None:
        if name in self._topics:
            raise StreamError(f"topic {name!r} already exists")
        if partitions < 1:
            raise StreamError("a topic needs at least one partition")
        self._topics[name] = [
            PartitionLog(name, index) for index in range(partitions)
        ]

    def topic_exists(self, name: str) -> bool:
        return name in self._topics

    def list_topics(self) -> list[str]:
        return sorted(self._topics)

    def partitions(self, topic: str) -> list[PartitionLog]:
        try:
            return self._topics[topic]
        except KeyError:
            raise StreamError(f"unknown topic {topic!r}") from None

    def partition(self, topic: str, index: int = 0) -> PartitionLog:
        logs = self.partitions(topic)
        if not 0 <= index < len(logs):
            raise StreamError(f"{topic} has no partition {index}")
        return logs[index]

    def produce(
        self, topic: str, value: object, key: str | None = None, partition: int = 0
    ) -> int:
        return self.partition(topic, partition).append(value, key)
