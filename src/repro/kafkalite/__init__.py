"""Mini Kafka: partition logs, compaction, offset semantics."""

from repro.kafkalite.broker import Broker
from repro.kafkalite.consumer import NaiveOffsetConsumer, SeekingConsumer
from repro.kafkalite.log import LogRecord, PartitionLog

__all__ = [
    "Broker",
    "NaiveOffsetConsumer",
    "SeekingConsumer",
    "LogRecord",
    "PartitionLog",
]
