"""Partition logs with compaction.

SPARK-19361 (Table 6, "wrong API assumptions"): Spark assumed Kafka
offsets always increment by one. Log compaction deletes superseded
records *without renumbering*, so surviving offsets are non-contiguous —
the property this log models precisely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OffsetOutOfRangeError

__all__ = ["LogRecord", "PartitionLog"]


@dataclass(frozen=True)
class LogRecord:
    offset: int
    key: str | None
    value: object
    timestamp_ms: int = 0


@dataclass
class PartitionLog:
    topic: str
    partition: int = 0
    _records: list[LogRecord] = field(default_factory=list)
    _next_offset: int = 0

    def append(self, value: object, key: str | None = None, timestamp_ms: int = 0) -> int:
        offset = self._next_offset
        self._records.append(LogRecord(offset, key, value, timestamp_ms))
        self._next_offset += 1
        return offset

    @property
    def log_start_offset(self) -> int:
        return self._records[0].offset if self._records else self._next_offset

    @property
    def log_end_offset(self) -> int:
        """The offset the *next* record will get (exclusive end)."""
        return self._next_offset

    def offsets(self) -> list[int]:
        return [record.offset for record in self._records]

    def read(self, offset: int) -> LogRecord:
        """Read the record at exactly ``offset``; raises if absent."""
        for record in self._records:
            if record.offset == offset:
                return record
        raise OffsetOutOfRangeError(
            f"{self.topic}-{self.partition}: no record at offset {offset}"
        )

    def read_from(self, offset: int) -> LogRecord | None:
        """Read the first record with offset >= ``offset`` (correct API)."""
        for record in self._records:
            if record.offset >= offset:
                return record
        return None

    def compact(self) -> int:
        """Keep only the latest record per key; returns records removed.

        Offsets of surviving records are unchanged — after compaction
        the sequence has holes.
        """
        latest: dict[str | None, int] = {}
        for index, record in enumerate(self._records):
            latest[record.key] = index
        keep = set(latest.values())
        before = len(self._records)
        self._records = [
            record for index, record in enumerate(self._records) if index in keep
        ]
        return before - len(self._records)

    def is_contiguous(self) -> bool:
        offsets = self.offsets()
        return all(b == a + 1 for a, b in zip(offsets, offsets[1:]))
