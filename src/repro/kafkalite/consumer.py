"""Consumers: the wrong-assumption one and the correct one.

``NaiveOffsetConsumer`` is the upstream of SPARK-19361: it advances its
position by exactly +1 per record and reads *at* that offset, which
breaks the moment compaction leaves holes in the offset sequence. The
``SeekingConsumer`` uses the read-from-next-available API instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OffsetOutOfRangeError
from repro.kafkalite.log import LogRecord, PartitionLog

__all__ = ["NaiveOffsetConsumer", "SeekingConsumer"]


@dataclass
class NaiveOffsetConsumer:
    """Assumes offsets increment by 1 (the buggy upstream behaviour)."""

    log: PartitionLog
    position: int = 0

    def poll_all(self) -> list[LogRecord]:
        """Read until the end offset, incrementing the position by one.

        Raises :class:`OffsetOutOfRangeError` at the first compaction
        hole — the SPARK-19361 job failure.
        """
        records = []
        while self.position < self.log.log_end_offset:
            records.append(self.log.read(self.position))
            self.position += 1
        return records


@dataclass
class SeekingConsumer:
    """Reads the next *available* offset (the fixed behaviour)."""

    log: PartitionLog
    position: int = 0

    def poll_all(self) -> list[LogRecord]:
        records = []
        while True:
            record = self.log.read_from(self.position)
            if record is None:
                return records
            records.append(record)
            self.position = record.offset + 1
