"""Deterministic, seed-driven fault injection at cross-system seams.

The paper's CSI failures live at boundaries; PR 3 made every boundary
call a span, and this package makes the same sites injectable. A
:class:`FaultPlan` (picklable, rate-based rules over the traced
``boundary``/``operation`` vocabulary) plus an integer seed fully
determines which boundary calls fault in which trials — the schedule is
a pure hash, so it reproduces across runs and ``--jobs`` worker counts,
which is what lets CI gate on the robustness classifications.
"""

from .core import (
    FaultAction,
    FaultInjector,
    InjectionRecord,
    apply_torn_write,
    current_injector,
    decode_injection_batches,
    encode_injection_batches,
    fault_point,
    injection_active,
)
from .errors import (
    BoundaryError,
    BoundaryTimeout,
    BoundaryUnavailable,
    FaultError,
    InjectedFault,
    InjectedIOError,
    InjectedTimeout,
    TransientFault,
)
from .plan import (
    BUILTIN_PLANS,
    EMPTY_PLAN,
    FAULT_KINDS,
    KNOWN_SITES,
    FaultPlan,
    FaultRule,
    FaultSite,
    PlanError,
    load_plan,
)

__all__ = [
    "FaultAction",
    "FaultInjector",
    "InjectionRecord",
    "apply_torn_write",
    "current_injector",
    "decode_injection_batches",
    "encode_injection_batches",
    "fault_point",
    "injection_active",
    "BoundaryError",
    "BoundaryTimeout",
    "BoundaryUnavailable",
    "FaultError",
    "InjectedFault",
    "InjectedIOError",
    "InjectedTimeout",
    "TransientFault",
    "BUILTIN_PLANS",
    "EMPTY_PLAN",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "FaultSite",
    "KNOWN_SITES",
    "PlanError",
    "load_plan",
]
