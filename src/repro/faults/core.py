"""The deterministic fault injector and its site-side entry point.

Mirrors :mod:`repro.tracing.core`: a module-global plain-int activation
counter makes the injection-off path a single global load, and a
:mod:`contextvars` slot carries the per-trial injector across the call
chain. Sites call :func:`fault_point` unconditionally, exactly like
they call :func:`repro.tracing.core.span`.

Every injection decision is a pure function of
``(seed, trial_key, site, operation, visit_index, rule_index)`` hashed
through BLAKE2b — never the builtin ``hash`` (randomized per process)
and never a live RNG — so a given ``(plan, seed)`` schedules the same
faults for the same trial no matter which worker runs it, how many
workers there are, or what ran before it in the same process.
"""

from __future__ import annotations

import json
import threading
from contextvars import ContextVar, Token
from dataclasses import dataclass
from hashlib import blake2b

from .errors import InjectedIOError, InjectedTimeout
from .plan import FaultPlan

__all__ = [
    "InjectionRecord",
    "FaultAction",
    "FaultInjector",
    "fault_point",
    "injection_active",
    "current_injector",
    "apply_torn_write",
    "encode_injection_batches",
    "decode_injection_batches",
]


@dataclass(frozen=True)
class InjectionRecord:
    """One fired injection — plain picklable fields only, like spans."""

    site: str
    operation: str
    kind: str
    visit: int

    def to_json(self) -> dict:
        return {
            "site": self.site,
            "operation": self.operation,
            "kind": self.kind,
            "visit": self.visit,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "InjectionRecord":
        return cls(
            site=payload["site"],
            operation=payload["operation"],
            kind=payload["kind"],
            visit=payload["visit"],
        )


def encode_injection_batches(
    batches: list[tuple["InjectionRecord", ...]],
) -> bytes:
    """Per-trial injection tuples as one compact JSON blob.

    The shard-result wire format for fault schedules, mirroring
    :func:`repro.tracing.export.encode_span_batches`: records are
    field tuples (site, operation, kind, visit), encoded once per shard
    instead of pickled one dataclass instance at a time.
    """
    return json.dumps(
        [
            [
                (record.site, record.operation, record.kind, record.visit)
                for record in batch
            ]
            for batch in batches
        ],
        separators=(",", ":"),
    ).encode("utf-8")


def decode_injection_batches(
    blob: bytes,
) -> list[tuple["InjectionRecord", ...]]:
    """Inverse of :func:`encode_injection_batches`, batch order kept."""
    return [
        tuple(InjectionRecord(*fields) for fields in batch)
        for batch in json.loads(blob.decode("utf-8"))
    ]


@dataclass(frozen=True)
class FaultAction:
    """A cooperative fault the *site* must apply (returned, not raised).

    ``fraction`` is a deterministic value in ``[0.25, 0.75)`` used by
    torn writes to pick the truncation point.
    """

    kind: str
    fraction: float


def _hash01(*parts: object) -> float:
    """Map a decision key to a float in ``[0, 1)``, process-independent."""
    key = "\x1f".join(str(part) for part in parts).encode("utf-8")
    digest = blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


# -- the active injector ----------------------------------------------------

#: how many injectors are currently activated, process-wide; the
#: injection-off fast path reads this plain int, nothing else.
_ACTIVE_INJECTORS = 0
_ACTIVE_LOCK = threading.Lock()

_CURRENT_INJECTOR: ContextVar["FaultInjector | None"] = ContextVar(
    "repro_fault_injector", default=None
)


class FaultInjector:
    """Applies one plan to one trial; records everything it fires.

    Used as a context manager around a trial, exactly like ``Tracer``.
    ``trial_key`` is the trial's stable identity (the same
    ``plan/format/input`` string the tracer uses as a trace id), which
    is what detaches the fault schedule from worker scheduling.
    """

    def __init__(self, plan: FaultPlan, seed: int, trial_key: str) -> None:
        self.plan = plan
        self.seed = seed
        self.trial_key = trial_key
        self.records: list[InjectionRecord] = []
        self._visits: dict[tuple[str, str], int] = {}
        self._fired: dict[int, int] = {}
        self._token: Token["FaultInjector | None"] | None = None

    # -- decision -------------------------------------------------------

    def visit(
        self,
        site: str,
        operation: str,
        cooperative: tuple[str, ...],
    ) -> FaultAction | None:
        """One boundary call reached ``site``; decide whether it faults."""
        visit_key = (site, operation)
        index = self._visits.get(visit_key, 0)
        self._visits[visit_key] = index + 1
        for rule_index, rule in enumerate(self.plan.rules):
            if not rule.matches(site, operation):
                continue
            raising = rule.kind in ("timeout", "io_error")
            if not raising and rule.kind not in cooperative:
                # the site cannot apply this cooperative kind; skipping
                # consumes no randomness, so other draws are unaffected
                continue
            fired = self._fired.get(rule_index, 0)
            if rule.max_per_trial and fired >= rule.max_per_trial:
                continue
            draw = _hash01(
                self.seed, self.trial_key, site, operation, index, rule_index
            )
            if draw >= rule.rate:
                continue
            self._fired[rule_index] = fired + 1
            self.records.append(
                InjectionRecord(site, operation, rule.kind, index)
            )
            aux = _hash01(
                "aux",
                self.seed,
                self.trial_key,
                site,
                operation,
                index,
                rule_index,
            )
            if rule.kind == "timeout":
                raise InjectedTimeout(site, operation, jitter=aux)
            if rule.kind == "io_error":
                raise InjectedIOError(site, operation, jitter=aux)
            # cooperative: hand the action back to the site
            return FaultAction(rule.kind, 0.25 + 0.5 * aux)
        return None

    # -- activation -----------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        global _ACTIVE_INJECTORS
        self._token = _CURRENT_INJECTOR.set(self)
        with _ACTIVE_LOCK:
            _ACTIVE_INJECTORS += 1
        return self

    def __exit__(self, *exc_info: object) -> bool:
        global _ACTIVE_INJECTORS
        with _ACTIVE_LOCK:
            _ACTIVE_INJECTORS -= 1
        if self._token is not None:
            _CURRENT_INJECTOR.reset(self._token)
            self._token = None
        return False


# -- module-level site API --------------------------------------------------


def fault_point(
    site: str,
    operation: str = "",
    cooperative: tuple[str, ...] = (),
) -> FaultAction | None:
    """Declare an injectable boundary call; sites call this inline.

    Raises an injected transient fault, returns a cooperative
    :class:`FaultAction` the site must apply, or returns ``None`` (the
    overwhelmingly common case, costing one global int check when no
    injector is active).
    """
    if not _ACTIVE_INJECTORS:
        return None
    injector = _CURRENT_INJECTOR.get()
    if injector is None:
        return None
    return injector.visit(site, operation, cooperative)


def injection_active() -> bool:
    """Whether *this context* has a live injector with at least one rule.

    Engines consult this to bypass their plan caches: prepared-plan
    reuse would skip prepare-time fault points on cache hits, making
    the schedule depend on cache history (which varies with worker
    count). PR 2 pinned cache-on/off byte-identity, so bypassing is
    outcome-neutral.
    """
    if not _ACTIVE_INJECTORS:
        return False
    injector = _CURRENT_INJECTOR.get()
    return injector is not None and not injector.plan.empty


def current_injector() -> "FaultInjector | None":
    return _CURRENT_INJECTOR.get() if _ACTIVE_INJECTORS else None


def apply_torn_write(blob: bytes, action: FaultAction) -> bytes:
    """Truncate ``blob`` at the action's deterministic tear point."""
    if not blob:
        return blob
    return blob[: int(len(blob) * action.fraction)]
