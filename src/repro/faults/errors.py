"""Exception types raised by the fault-injection layer.

Two families live here. ``InjectedFault`` subclasses are the *raw*
faults the injector raises at a boundary site — they model the
transport-level symptom (a timeout, a flaky I/O error) and are what a
retry policy is expected to absorb. ``BoundaryError`` subclasses are
the *typed* errors a well-behaved connector surfaces after its retry
budget is exhausted — the "gracefully-failed" shape of the paper's
taxonomy. A raw ``InjectedFault`` escaping to the trial outcome means
the boundary had no handling at all, which the robustness oracle
classifies as mis-handled.

Every class carries ``fault_kind`` so downstream consumers (the
tolerance reader, the oracle) can report the injected cause instead of
parroting an exception repr.
"""

from __future__ import annotations

from ..errors import ReproError

__all__ = [
    "FaultError",
    "InjectedFault",
    "TransientFault",
    "InjectedTimeout",
    "InjectedIOError",
    "BoundaryError",
    "BoundaryTimeout",
    "BoundaryUnavailable",
]


class FaultError(ReproError):
    """Base class for everything the fault layer raises."""


class InjectedFault(FaultError):
    """A raw fault injected at a boundary site.

    ``jitter`` is a deterministic value in ``[0, 1)`` derived from the
    injection decision hash; retry policies use it to de-synchronize
    their simulated backoff without consulting a live RNG.
    """

    def __init__(
        self,
        site: str,
        operation: str = "",
        fault_kind: str = "fault",
        jitter: float = 0.0,
    ) -> None:
        self.site = site
        self.operation = operation
        self.fault_kind = fault_kind
        self.jitter = jitter
        suffix = f".{operation}" if operation else ""
        super().__init__(f"injected {fault_kind} at {site}{suffix}")


class TransientFault(InjectedFault):
    """An injected fault that a retry is allowed to absorb."""


class InjectedTimeout(TransientFault):
    """The peer system did not answer within the (simulated) deadline."""

    def __init__(
        self, site: str, operation: str = "", jitter: float = 0.0
    ) -> None:
        super().__init__(site, operation, "timeout", jitter)


class InjectedIOError(TransientFault):
    """A transient transport error on the wire to the peer system."""

    def __init__(
        self, site: str, operation: str = "", jitter: float = 0.0
    ) -> None:
        super().__init__(site, operation, "io_error", jitter)


class BoundaryError(FaultError):
    """Typed error a connector raises once its retry budget is spent."""

    def __init__(
        self,
        site: str,
        operation: str = "",
        fault_kind: str = "fault",
        attempts: int = 0,
    ) -> None:
        self.site = site
        self.operation = operation
        self.fault_kind = fault_kind
        self.attempts = attempts
        suffix = f".{operation}" if operation else ""
        super().__init__(
            f"{site}{suffix} failed after {attempts} attempts"
            f" ({fault_kind})"
        )


class BoundaryTimeout(BoundaryError):
    """Every retry of a boundary call timed out."""

    def __init__(
        self, site: str, operation: str = "", attempts: int = 0
    ) -> None:
        super().__init__(site, operation, "timeout", attempts)


class BoundaryUnavailable(BoundaryError):
    """The peer system stayed unreachable across the whole retry budget."""

    def __init__(
        self, site: str, operation: str = "", attempts: int = 0
    ) -> None:
        super().__init__(site, operation, "io_error", attempts)
