"""Fault plans: which boundary sites fail, how, and how often.

A :class:`FaultPlan` is a named, ordered list of :class:`FaultRule`
entries. Rules select boundary sites with :mod:`fnmatch` globs over the
``(boundary, operation)`` vocabulary the tracer already uses (site
``"spark->metastore"``, operation ``"resolve"``, ...), and each carries
an injection ``rate`` plus a fault ``kind``. Plans are plain frozen
dataclasses of primitives, so they pickle into ``--jobs`` process
workers unchanged — determinism comes from hashing, never from shared
state.

The module also registers the canonical site vocabulary
(:data:`KNOWN_SITES`) and a handful of builtin plans used by the CLI
and the CI chaos job.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

__all__ = [
    "FAULT_KINDS",
    "FaultRule",
    "FaultPlan",
    "FaultSite",
    "KNOWN_SITES",
    "BUILTIN_PLANS",
    "EMPTY_PLAN",
    "PlanError",
    "load_plan",
]

#: every fault kind the injector knows how to produce. ``timeout`` and
#: ``io_error`` raise at the site; ``torn_write`` and ``stale_read``
#: are cooperative — the site itself applies them (truncate the blob,
#: serve a not-yet-visible table) and only sites that declare support
#: can receive them.
FAULT_KINDS = ("timeout", "io_error", "torn_write", "stale_read")


class PlanError(ValueError):
    """A fault plan (builtin name, JSON file, or rule) is invalid."""


@dataclass(frozen=True)
class FaultSite:
    """One injectable boundary operation and the kinds it supports."""

    site: str
    operation: str
    cooperative: tuple[str, ...] = ()

    @property
    def kinds(self) -> tuple[str, ...]:
        return ("timeout", "io_error") + self.cooperative


#: the injectable site vocabulary — one entry per traced boundary
#: operation the harness crosses. ``python -m repro faults list``
#: prints this table.
KNOWN_SITES: tuple[FaultSite, ...] = (
    FaultSite("spark->metastore", "create_table"),
    FaultSite("spark->metastore", "resolve", ("stale_read",)),
    FaultSite("spark->hdfs", "write_segment", ("torn_write",)),
    FaultSite("spark->hdfs", "read_segments"),
    FaultSite("spark->hdfs", "read_partitioned_segments"),
    FaultSite("spark->serde", "encode"),
    FaultSite("spark->serde", "decode"),
    FaultSite("hive->metastore", "create_table"),
    FaultSite("hive->metastore", "get_table", ("stale_read",)),
    FaultSite("hive->hdfs", "write_segment", ("torn_write",)),
    FaultSite("hive->hdfs", "read_segments"),
    FaultSite("hive->hdfs", "read_partitioned_segments"),
    FaultSite("hive->serde", "encode"),
    FaultSite("hive->serde", "decode"),
    FaultSite("hive->hbase", "put"),
    FaultSite("hive->hbase", "scan"),
    FaultSite("am->rm", "report_final_status"),
    FaultSite("am->rm", "request_containers"),
)


@dataclass(frozen=True)
class FaultRule:
    """Inject ``kind`` at sites matching ``site``/``operation`` globs.

    ``rate`` is the per-visit injection probability, decided by hashing
    (seed, trial, site, operation, visit index) — not by a live RNG —
    so the same plan and seed schedule the same faults at any worker
    count. ``max_per_trial`` caps how many times this rule may fire in
    a single trial (0 means unlimited).
    """

    site: str
    kind: str
    rate: float
    operation: str = "*"
    max_per_trial: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise PlanError(
                f"unknown fault kind {self.kind!r}"
                f" (valid: {', '.join(FAULT_KINDS)})"
            )
        if not 0.0 < self.rate <= 1.0:
            raise PlanError(f"rule rate must be in (0, 1], got {self.rate!r}")
        if self.max_per_trial < 0:
            raise PlanError("max_per_trial must be >= 0")
        if not self.site:
            raise PlanError("rule site glob must be non-empty")

    def matches(self, site: str, operation: str) -> bool:
        return fnmatchcase(site, self.site) and fnmatchcase(
            operation, self.operation or "*"
        )

    def to_json(self) -> dict:
        payload: dict = {
            "site": self.site,
            "kind": self.kind,
            "rate": self.rate,
        }
        if self.operation != "*":
            payload["operation"] = self.operation
        if self.max_per_trial:
            payload["max_per_trial"] = self.max_per_trial
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "FaultRule":
        unknown = set(payload) - {
            "site",
            "kind",
            "rate",
            "operation",
            "max_per_trial",
        }
        if unknown:
            raise PlanError(f"unknown rule keys: {', '.join(sorted(unknown))}")
        try:
            return cls(
                site=str(payload["site"]),
                kind=str(payload["kind"]),
                rate=float(payload["rate"]),
                operation=str(payload.get("operation", "*")),
                max_per_trial=int(payload.get("max_per_trial", 0)),
            )
        except KeyError as exc:
            raise PlanError(f"rule missing key {exc.args[0]!r}") from None


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered set of fault rules (first matching rule wins)."""

    name: str
    rules: tuple[FaultRule, ...] = field(default_factory=tuple)
    description: str = ""

    @property
    def empty(self) -> bool:
        return not self.rules

    def to_json(self) -> dict:
        payload: dict = {
            "name": self.name,
            "rules": [rule.to_json() for rule in self.rules],
        }
        if self.description:
            payload["description"] = self.description
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise PlanError("fault plan must be a JSON object")
        rules = payload.get("rules", [])
        if not isinstance(rules, list):
            raise PlanError("plan 'rules' must be a list")
        return cls(
            name=str(payload.get("name", "custom")),
            rules=tuple(FaultRule.from_json(rule) for rule in rules),
            description=str(payload.get("description", "")),
        )


EMPTY_PLAN = FaultPlan(name="empty")

#: builtin plans, addressable by name from ``--faults``. ``smoke`` only
#: targets retry-guarded metastore calls, so a healthy harness masks or
#: gracefully fails every injection — that is what the CI chaos gate
#: asserts. The others deliberately include kinds the stack mis-handles
#: to demonstrate the paper's failure taxonomy.
BUILTIN_PLANS: dict[str, FaultPlan] = {
    plan.name: plan
    for plan in (
        FaultPlan(
            name="smoke",
            description=(
                "transient metastore faults under the retry budget;"
                " expects zero mis-handled trials"
            ),
            rules=(
                FaultRule("spark->metastore", "timeout", 0.25),
                FaultRule("spark->metastore", "io_error", 0.1),
            ),
        ),
        FaultPlan(
            name="metastore-brownout",
            description=(
                "metastore times out almost every call, exhausting"
                " retry budgets into typed boundary errors"
            ),
            rules=(FaultRule("*->metastore", "timeout", 0.9),),
        ),
        FaultPlan(
            name="torn-writes",
            description=(
                "warehouse writes are truncated mid-blob; surfaces"
                " wrong-system read errors"
            ),
            rules=(
                FaultRule(
                    "*->hdfs", "torn_write", 0.3, operation="write_segment"
                ),
            ),
        ),
        FaultPlan(
            name="stale-metastore",
            description=(
                "metastore lookups see a snapshot from before the"
                " table existed"
            ),
            rules=(
                FaultRule(
                    "spark->metastore",
                    "stale_read",
                    0.5,
                    operation="resolve",
                    max_per_trial=1,
                ),
                FaultRule(
                    "hive->metastore",
                    "stale_read",
                    0.5,
                    operation="get_table",
                    max_per_trial=1,
                ),
            ),
        ),
        FaultPlan(
            name="chaos",
            description="every fault kind at every seam, low rates",
            rules=(
                FaultRule("*->metastore", "timeout", 0.1),
                FaultRule("*->metastore", "io_error", 0.05),
                FaultRule(
                    "*->hdfs",
                    "torn_write",
                    0.05,
                    operation="write_segment",
                ),
                FaultRule(
                    "*->metastore", "stale_read", 0.05, max_per_trial=1
                ),
                FaultRule("hive->hbase", "timeout", 0.1),
                FaultRule("am->rm", "io_error", 0.1),
            ),
        ),
    )
}


def load_plan(spec: str) -> FaultPlan:
    """Resolve ``spec`` to a plan: builtin name, or path to a JSON file.

    Anything that looks like a path (contains a separator, ends in
    ``.json``, or names an existing file) is loaded as JSON; otherwise
    the spec must be a builtin plan name.
    """
    looks_like_path = (
        os.sep in spec
        or (os.altsep is not None and os.altsep in spec)
        or spec.endswith(".json")
        or os.path.isfile(spec)
    )
    if not looks_like_path:
        try:
            return BUILTIN_PLANS[spec]
        except KeyError:
            raise PlanError(
                f"unknown fault plan {spec!r}"
                f" (builtins: {', '.join(sorted(BUILTIN_PLANS))};"
                " or pass a JSON plan file)"
            ) from None
    try:
        with open(spec, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise PlanError(f"cannot read fault plan {spec!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise PlanError(f"fault plan {spec!r} is not JSON: {exc}") from exc
    return FaultPlan.from_json(payload)
