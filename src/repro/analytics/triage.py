"""Auto-triage of nightly novelty: checkpoint → witness → shrink → delta.

A nightly campaign that exits 4 leaves three artifacts behind: a
checkpoint (campaign state by provenance), a fingerprint JSONL (which
keys were novel), and a ledger. Everything needed to turn "the nightly
is red" into "here is the minimal witness and the one-line baseline
change" is already in them — the checkpoint stores each finding's
witness as its ``(round, slot, input_id)`` coordinates, and the
scheduler's determinism guarantee means replaying those coordinates
regenerates the exact input that fired.

:func:`triage_checkpoint` does the whole walk:

1. restore :class:`~repro.fuzz.scheduler.CampaignState` from the
   checkpoint (witness inputs rebuilt from provenance),
2. for each novel fingerprint key, re-run its witness through the real
   executor (:func:`repro.fuzz.shrink.reproduces`) to confirm the
   coordinates still fire,
3. shrink the witness with the delta-debugging shrinker,
4. emit a ``known_discrepancies.json``-shaped **delta** (just the new
   entries, reviewable on its own) and a **proposed** baseline (current
   baseline + delta, ready to commit — or to pass straight back as
   ``--baseline`` to prove the campaign now exits 0).

A key that fails to re-fire is a determinism violation (or a checkpoint
from a different build) and is reported as such rather than silently
added to the baseline.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.campaign.checkpoint import Checkpoint, load_checkpoint
from repro.crosstest.fingerprint import conf_label
from repro.crosstest.values import TestInput
from repro.fuzz.dedup import Baseline
from repro.fuzz.scheduler import CampaignState
from repro.fuzz.shrink import input_size, reproduces, shrink_input
from repro.obs.cluster import item_seam

__all__ = [
    "TriageError",
    "TriagedFinding",
    "TriageReport",
    "novel_keys_from_jsonl",
    "triage_checkpoint",
    "write_triage",
]


class TriageError(Exception):
    """Unusable triage input: bad checkpoint, unknown keys, bad JSONL."""


@dataclass
class TriagedFinding:
    """One novel fingerprint, walked back to its minimal witness."""

    key: str
    #: the ``(round, slot, input_id)`` coordinates the checkpoint carried
    provenance: tuple[int, int, int]
    #: deployment conf label the finding fired under
    conf: str
    #: seam attribution, same vocabulary as the cluster reports
    seam: str
    #: witness regenerated from provenance
    witness: TestInput
    #: did the regenerated witness re-fire the fingerprint?
    reproduced: bool
    #: shrunk witness (``None`` when shrinking was off or impossible)
    shrunk: TestInput | None = None

    @property
    def minimal(self) -> TestInput:
        return self.shrunk if self.shrunk is not None else self.witness

    def _input_json(self, test_input: TestInput) -> dict:
        return {
            "input_id": test_input.input_id,
            "type_text": test_input.type_text,
            "sql_literal": test_input.sql_literal,
            "valid": test_input.valid,
            "description": test_input.description,
            "size": input_size(test_input),
        }

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "provenance": list(self.provenance),
            "conf": self.conf,
            "seam": self.seam,
            "reproduced": self.reproduced,
            "witness": self._input_json(self.witness),
            "shrunk": self._input_json(self.minimal),
        }


@dataclass
class TriageReport:
    """Everything one triage run established."""

    checkpoint_path: str
    #: determinism signature of the checkpointed campaign
    config: dict
    findings: list[TriagedFinding]
    #: baseline size before / after applying the delta
    baseline_before: int
    baseline_after: int

    @property
    def all_reproduced(self) -> bool:
        return all(finding.reproduced for finding in self.findings)

    def to_json(self) -> dict:
        return {
            "kind": "triage-report",
            "checkpoint": self.checkpoint_path,
            "config": self.config,
            "novel": len(self.findings),
            "reproduced": sum(
                1 for finding in self.findings if finding.reproduced
            ),
            "all_reproduced": self.all_reproduced,
            "baseline_before": self.baseline_before,
            "baseline_after": self.baseline_after,
            "findings": [finding.to_json() for finding in self.findings],
        }

    def to_text(self) -> str:
        """The human-readable triage summary (also the CLI output)."""
        lines = [
            f"triage of {self.checkpoint_path}",
            f"  novel fingerprints: {len(self.findings)}"
            f" ({sum(1 for f in self.findings if f.reproduced)} reproduced)",
            f"  baseline: {self.baseline_before} -> {self.baseline_after}"
            " entries",
        ]
        for finding in self.findings:
            round_index, slot, input_id = finding.provenance
            status = "ok" if finding.reproduced else "FAILED TO REPRODUCE"
            lines.append(f"  - {finding.key}")
            lines.append(
                f"      provenance: round {round_index}, slot {slot},"
                f" input {input_id} [{status}]"
            )
            lines.append(
                f"      seam: {finding.seam}   conf: {finding.conf}"
            )
            witness = finding.witness
            minimal = finding.minimal
            lines.append(
                f"      witness: {witness.type_text} ="
                f" {witness.sql_literal} (size {input_size(witness)})"
            )
            if minimal is not witness:
                lines.append(
                    f"      shrunk:  {minimal.type_text} ="
                    f" {minimal.sql_literal} (size {input_size(minimal)})"
                )
        return "\n".join(lines)


def novel_keys_from_jsonl(path: str) -> list[str]:
    """The novel fingerprint keys a campaign's JSONL sidecar recorded.

    Accepts both sidecar shapes — the service's per-batch lines and
    ``repro fuzz``'s key-sorted records — since both carry ``key`` and
    ``novel``.
    """
    keys: set[str] = set()
    try:
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise TriageError(
                        f"{path}:{lineno}: not valid JSON ({exc})"
                    ) from exc
                if not isinstance(record, dict) or "key" not in record:
                    raise TriageError(
                        f"{path}:{lineno}: not a fingerprint record"
                    )
                if record.get("novel"):
                    keys.add(str(record["key"]))
    except OSError as exc:
        raise TriageError(f"{path}: {exc}") from exc
    return sorted(keys)


def _restore_state(checkpoint: Checkpoint) -> CampaignState:
    try:
        return CampaignState.from_json(
            checkpoint.state, jobs=1, pool="auto", shrink=False
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise TriageError(f"unusable campaign state: {exc}") from exc


def triage_checkpoint(
    checkpoint_path: str,
    baseline: Baseline,
    *,
    fingerprints_path: str | None = None,
    shrink: bool = True,
) -> tuple[TriageReport, Baseline, Baseline]:
    """Triage a checkpointed campaign's novel findings.

    Returns ``(report, delta, proposed)``: the per-finding report, the
    baseline **delta** (only the new fingerprints), and the **proposed**
    baseline (``baseline`` + delta). Reproduction/shrinking runs
    ``jobs=1`` through the real executor, like the shrinker always has.

    Raises :class:`TriageError` on unusable inputs, including a
    fingerprint JSONL naming a key the checkpoint never witnessed.
    """
    checkpoint = load_checkpoint(checkpoint_path)
    state = _restore_state(checkpoint)
    config = state.config

    if fingerprints_path is not None:
        keys = novel_keys_from_jsonl(fingerprints_path)
        missing = [key for key in keys if key not in state.findings]
        if missing:
            raise TriageError(
                f"{fingerprints_path} names {len(missing)} key(s) the"
                f" checkpoint never witnessed (first: {missing[0]!r});"
                " checkpoint and fingerprint files are from different"
                " campaigns"
            )
    else:
        keys = state.novel_keys

    findings: list[TriagedFinding] = []
    delta = Baseline.empty()
    for key in keys:
        finding = state.findings[key]
        provenance = state.witness_provenance[key]
        label = conf_label(finding.conf_overrides)
        fired = reproduces(
            finding.witness,
            key,
            config.plans,
            config.formats,
            finding.conf_overrides,
            label,
            batch=config.lanes,
        )
        shrunk = None
        if fired and shrink:
            shrunk = shrink_input(
                finding.witness,
                key,
                config.plans,
                config.formats,
                finding.conf_overrides,
                label,
                batch=config.lanes,
            )
        findings.append(
            TriagedFinding(
                key=key,
                provenance=provenance,
                conf=label,
                seam=item_seam(f"fp:{key}"),
                witness=finding.witness,
                reproduced=fired,
                shrunk=shrunk,
            )
        )
        # the fingerprint goes into the delta either way: dedup is by
        # key, and a key the campaign witnessed will be witnessed again
        # on the next run whether or not this host re-fired it today
        delta.add(finding.fingerprint)

    proposed = Baseline(dict(baseline.fingerprints))
    proposed.merge(delta)
    return (
        TriageReport(
            checkpoint_path=checkpoint_path,
            config=config.signature(),
            findings=findings,
            baseline_before=len(baseline),
            baseline_after=len(proposed),
        ),
        delta,
        proposed,
    )


def write_triage(
    out_dir: str,
    report: TriageReport,
    delta: Baseline,
    proposed: Baseline,
) -> dict[str, str]:
    """Write the triage artifact set; returns name → path.

    ``baseline-delta.json`` is the reviewable diff,
    ``proposed_known_discrepancies.json`` is the full merged baseline —
    drop-in for ``src/repro/fuzz/known_discrepancies.json`` or usable
    directly as ``--baseline``.
    """
    os.makedirs(out_dir, exist_ok=True)
    paths = {
        "report": os.path.join(out_dir, "triage-report.json"),
        "summary": os.path.join(out_dir, "triage-report.txt"),
        "delta": os.path.join(out_dir, "baseline-delta.json"),
        "proposed": os.path.join(
            out_dir, "proposed_known_discrepancies.json"
        ),
    }
    with open(paths["report"], "w", encoding="utf-8") as handle:
        json.dump(report.to_json(), handle, indent=1, sort_keys=True)
        handle.write("\n")
    with open(paths["summary"], "w", encoding="utf-8") as handle:
        handle.write(report.to_text() + "\n")
    delta.save(paths["delta"])
    proposed.save(paths["proposed"])
    return paths
