"""Analytics over the perpetual campaign ledger.

:mod:`repro.obs` records what every run saw; this package answers what
the *sequence* of runs means: which failure clusters changed behaviour
at a commit boundary (:mod:`~repro.analytics.drift`), how clusters are
born, die, merge and split across ledger windows
(:mod:`~repro.analytics.windows`), and what exactly a nightly exit-4
novelty is — walked from checkpoint provenance to a shrunk witness and
a ready-to-commit baseline delta (:mod:`~repro.analytics.triage`).

Surfaces: ``repro analyze`` / ``repro triage`` on the CLI, the
``/analytics`` endpoint on the status server, and the
``analytics-smoke`` CI gate (:mod:`~repro.analytics.smoke`).
"""

from repro.analytics.drift import (
    DEFAULT_MIN_DELTA,
    AnalyticsReport,
    ClusterDrift,
    analyze_ledger,
    detect_drift,
)
from repro.analytics.triage import (
    TriagedFinding,
    TriageError,
    TriageReport,
    novel_keys_from_jsonl,
    triage_checkpoint,
    write_triage,
)
from repro.analytics.windows import (
    DEFAULT_WINDOW_SECONDS,
    EvolutionEvent,
    Window,
    cluster_evolution,
    cluster_windows,
    commit_windows,
    partition_ledger,
    record_commit,
    time_windows,
)

__all__ = [
    "DEFAULT_MIN_DELTA",
    "DEFAULT_WINDOW_SECONDS",
    "AnalyticsReport",
    "ClusterDrift",
    "EvolutionEvent",
    "TriageError",
    "TriageReport",
    "TriagedFinding",
    "Window",
    "analyze_ledger",
    "cluster_evolution",
    "cluster_windows",
    "commit_windows",
    "detect_drift",
    "novel_keys_from_jsonl",
    "partition_ledger",
    "record_commit",
    "time_windows",
    "triage_checkpoint",
    "write_triage",
]
