"""Cluster drift detection across ledger windows.

A failure cluster whose flake rate *moves* at a commit boundary is the
regression (or silent fix) signal a perpetual campaign exists to catch:
the OpenStack cross-project study in PAPERS.md found exactly these
cross-boundary rate shifts to be the flakiness events worth alarming
on. This module computes them.

Cluster identity is established **globally** — one clustering over the
whole ledger (:func:`repro.obs.cluster.cluster_ledger`), so a cluster
keeps its identity across windows even if it fails in only one of them
— and then each cluster's occurrence rate is measured per window as
"fraction of the window's runs in which any member failed". Adjacent
windows whose rates differ by at least ``min_delta`` produce a
:class:`ClusterDrift` flag with direction, both rates, and the seam
attribution the global cluster already carries.

Determinism: windows come from :mod:`repro.analytics.windows` (canonical
record order) and clusters from ``cluster_ledger`` (order-free), so the
full report is shuffle-order independent (pinned by tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analytics.windows import (
    DEFAULT_WINDOW_SECONDS,
    EvolutionEvent,
    Window,
    cluster_evolution,
    partition_ledger,
)
from repro.obs.cluster import DEFAULT_THRESHOLD, Cluster, cluster_ledger

__all__ = [
    "DEFAULT_MIN_DELTA",
    "ClusterDrift",
    "AnalyticsReport",
    "detect_drift",
    "analyze_ledger",
]

#: below this rate change between adjacent windows a cluster is stable.
#: 0.25 means "a quarter of the window's runs changed verdict" — big
#: enough to ignore single-run noise in small windows, small enough to
#: flag a cluster going from occasional to persistent.
DEFAULT_MIN_DELTA = 0.25


@dataclass(frozen=True)
class ClusterDrift:
    """One cluster whose occurrence rate moved across a window boundary."""

    #: sorted members of the (globally identified) cluster
    cluster: tuple[str, ...]
    #: seam attribution inherited from the global cluster
    seams: tuple[str, ...]
    #: labels of the (before, after) windows
    boundary: tuple[str, str]
    before_rate: float
    after_rate: float
    #: ``"regressed"`` (rate went up) or ``"recovered"`` (went down)
    direction: str

    @property
    def delta(self) -> float:
        return self.after_rate - self.before_rate

    def to_json(self) -> dict:
        return {
            "cluster": list(self.cluster),
            "seams": list(self.seams),
            "boundary": list(self.boundary),
            "before_rate": self.before_rate,
            "after_rate": self.after_rate,
            "delta": self.delta,
            "direction": self.direction,
        }


def detect_drift(
    records: list[dict],
    *,
    by: str = "commit",
    window_seconds: float = DEFAULT_WINDOW_SECONDS,
    threshold: float = DEFAULT_THRESHOLD,
    min_delta: float = DEFAULT_MIN_DELTA,
) -> list[ClusterDrift]:
    """Flag clusters whose per-window rate shifts beyond ``min_delta``.

    Output order is deterministic: boundary position, then descending
    absolute delta, then member tuple.
    """
    if not 0.0 < min_delta <= 1.0:
        raise ValueError(f"min_delta must be in (0, 1], got {min_delta}")
    windows = partition_ledger(
        records, by=by, window_seconds=window_seconds
    )
    if len(windows) < 2:
        return []
    clusters = cluster_ledger(records, threshold=threshold)
    drifts: list[ClusterDrift] = []
    for index in range(1, len(windows)):
        before, after = windows[index - 1], windows[index]
        boundary_flags: list[ClusterDrift] = []
        for cluster in clusters:
            before_rate = before.item_rate(cluster.members)
            after_rate = after.item_rate(cluster.members)
            delta = after_rate - before_rate
            if abs(delta) < min_delta:
                continue
            boundary_flags.append(
                ClusterDrift(
                    cluster=cluster.members,
                    seams=cluster.seams,
                    boundary=(before.label, after.label),
                    before_rate=before_rate,
                    after_rate=after_rate,
                    direction="regressed" if delta > 0 else "recovered",
                )
            )
        boundary_flags.sort(
            key=lambda drift: (-abs(drift.delta), drift.cluster)
        )
        drifts.extend(boundary_flags)
    return drifts


@dataclass(frozen=True)
class AnalyticsReport:
    """Everything ``repro analyze`` (and ``/analytics``) reports."""

    #: how the ledger was windowed: ``"commit"`` or ``"time"``
    by: str
    windows: tuple[Window, ...]
    clusters: tuple[Cluster, ...]
    drifts: tuple[ClusterDrift, ...]
    evolution: tuple[EvolutionEvent, ...] = field(default=())

    def to_json(self) -> dict:
        return {
            "by": self.by,
            "windows": [window.to_json() for window in self.windows],
            "clusters": [cluster.to_json() for cluster in self.clusters],
            "drifts": [drift.to_json() for drift in self.drifts],
            "evolution": [event.to_json() for event in self.evolution],
        }


def analyze_ledger(
    records: list[dict],
    *,
    by: str = "commit",
    window_seconds: float = DEFAULT_WINDOW_SECONDS,
    threshold: float = DEFAULT_THRESHOLD,
    min_delta: float = DEFAULT_MIN_DELTA,
) -> AnalyticsReport:
    """One-stop analysis: windows, global clusters, drift, evolution."""
    windows = partition_ledger(
        records, by=by, window_seconds=window_seconds
    )
    return AnalyticsReport(
        by=by,
        windows=tuple(windows),
        clusters=tuple(cluster_ledger(records, threshold=threshold)),
        drifts=tuple(
            detect_drift(
                records,
                by=by,
                window_seconds=window_seconds,
                threshold=threshold,
                min_delta=min_delta,
            )
        ),
        evolution=tuple(cluster_evolution(windows, threshold=threshold)),
    )
