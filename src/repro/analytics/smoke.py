"""The analytics smoke gate: drift must flag, triage must round-trip.

Two legs, both deterministic end to end:

1. **Drift**: a synthetic two-commit ledger — a cluster failing in 1/5
   runs at commit ``aaa1111`` and 5/5 at ``bbb2222`` — must produce a
   ``regressed`` drift flag (through the library *and* through
   ``repro analyze --gate``, which must exit 5), an evolution event,
   and byte-identical reports when the ledger lines are shuffled.

2. **Triage round-trip**: run the canonical seed-3 campaign in-process
   to learn its fingerprints, commit a baseline with one key held out,
   run ``repro campaign`` against it (must exit 4 — a seeded novelty),
   auto-triage the checkpoint (the held-out key must reproduce from its
   provenance coordinates and shrink), then re-run the campaign with
   the proposed baseline — which must exit 0. That closes the loop the
   nightly auto-triage step relies on: the artifact it uploads is
   *proven* to turn the red nightly green.

Run via ``make analytics-smoke`` / the ``analytics-smoke`` CI job:
``python -m repro.analytics.smoke [workdir]``.
"""

from __future__ import annotations

import json
import os
import sys

from repro.analytics.drift import analyze_ledger
from repro.analytics.triage import triage_checkpoint, write_triage
from repro.fuzz.dedup import Baseline
from repro.fuzz.scheduler import FuzzConfig, run_fuzz

__all__ = ["synthetic_drift_ledger", "main"]

#: the two commits of the synthetic ledger, in time order
_OLD_COMMIT, _NEW_COMMIT = "aaa1111", "bbb2222"
#: the fingerprint whose rate jumps at the boundary
_FLAKY_KEY = "smoke_drift|spark_hive|parquet|w:ok|shape|ev|conf"
#: present only before the boundary — its cluster dies
_DYING_KEY = "smoke_gone|hive_spark|orc|w:ok|shape|ev|conf"


def _record(ts: float, commit: str, keys: list[str]) -> dict:
    return {
        "schema_version": 1,
        "kind": "crosstest",
        "ts": ts,
        "run": {"corpus": "smoke", "jobs": 1},
        "results": {"fingerprints": sorted(keys)},
        "env": {"git": {"commit": commit}},
    }


def synthetic_drift_ledger() -> list[dict]:
    """Ten runs across two commits with one regressing cluster.

    At ``aaa1111`` the flaky fingerprint fires in 1/5 runs and a second
    fingerprint in the other 4; at ``bbb2222`` the flaky one fires in
    5/5 and the second never — a drift flag and a cluster death.
    """
    records = []
    for index in range(5):
        keys = [_FLAKY_KEY] if index == 0 else [_DYING_KEY]
        records.append(_record(1000.0 + index, _OLD_COMMIT, keys))
    for index in range(5):
        records.append(_record(2000.0 + index, _NEW_COMMIT, [_FLAKY_KEY]))
    return records


def _drift_leg(workdir: str) -> None:
    records = synthetic_drift_ledger()
    report = analyze_ledger(records)

    flagged = [
        drift
        for drift in report.drifts
        if drift.direction == "regressed"
        and drift.boundary == (_OLD_COMMIT, _NEW_COMMIT)
        and f"fp:{_FLAKY_KEY}" in drift.cluster
    ]
    if not flagged:
        raise AssertionError(
            "two-commit synthetic ledger produced no regression flag: "
            + json.dumps(report.to_json())
        )
    deaths = [event for event in report.evolution if event.kind == "death"]
    if not deaths:
        raise AssertionError("expected a cluster death at the boundary")

    shuffled = analyze_ledger(list(reversed(records)))
    if report.to_json() != shuffled.to_json():
        raise AssertionError(
            "analytics report depends on ledger line order"
        )
    print(
        f"[analytics-smoke] drift: {len(report.drifts)} flag(s), "
        f"{len(report.evolution)} evolution event(s), shuffle-stable"
    )

    # same ledger through the CLI gate: drift present must exit 5
    from repro import cli

    ledger_path = os.path.join(workdir, "drift.ledger.jsonl")
    with open(ledger_path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    code = cli.main(
        ["analyze", "--ledger", ledger_path, "--gate", "--quiet"]
    )
    if code != 5:
        raise AssertionError(
            f"'repro analyze --gate' on a drifting ledger exited {code},"
            " expected 5"
        )
    print("[analytics-smoke] drift: CLI gate exits 5 as specified")


def _campaign(workdir: str, name: str, baseline_path: str) -> int:
    from repro import cli

    return cli.main(
        [
            "campaign",
            "--seed", "3",
            "--batch", "8",
            "--max-batches", "1",
            "--quiet",
            "--checkpoint", os.path.join(workdir, f"{name}.ckpt.json"),
            "--fingerprints", os.path.join(workdir, f"{name}.fp.jsonl"),
            "--ledger", os.path.join(workdir, f"{name}.ledger.jsonl"),
            "--baseline", baseline_path,
        ]
    )


def _triage_leg(workdir: str) -> None:
    # learn the canonical seed-3 batch's fingerprints in-process, then
    # hold the last key out of the baseline to seed a "novelty"
    config = FuzzConfig(seed=3, budget=8, batch=8, shrink=False)
    learned = run_fuzz(config, Baseline.empty())
    keys = sorted(learned.findings)
    if not keys:
        raise AssertionError("seed-3 campaign witnessed no fingerprints")
    held_out = keys[-1]
    pruned = Baseline(
        {
            key: finding.fingerprint
            for key, finding in learned.findings.items()
            if key != held_out
        }
    )
    pruned_path = os.path.join(workdir, "pruned-baseline.json")
    pruned.save(pruned_path)
    print(
        f"[analytics-smoke] triage: {len(keys)} fingerprint(s), held out"
        f" {held_out!r}"
    )

    code = _campaign(workdir, "seeded", pruned_path)
    if code != 4:
        raise AssertionError(
            f"campaign against the pruned baseline exited {code},"
            " expected 4 (seeded novelty)"
        )

    report, delta, _proposed = triage_checkpoint(
        os.path.join(workdir, "seeded.ckpt.json"),
        Baseline.load(pruned_path),
        fingerprints_path=os.path.join(workdir, "seeded.fp.jsonl"),
        shrink=True,
    )
    if [finding.key for finding in report.findings] != [held_out]:
        raise AssertionError(
            f"triage found {[f.key for f in report.findings]},"
            f" expected exactly [{held_out!r}]"
        )
    if not report.all_reproduced:
        raise AssertionError(
            "held-out fingerprint did not reproduce from its provenance"
            " coordinates"
        )
    if held_out not in delta.fingerprints:
        raise AssertionError("baseline delta is missing the novel key")
    paths = write_triage(
        os.path.join(workdir, "triage"), report, delta, _proposed
    )
    print(
        "[analytics-smoke] triage: reproduced + shrunk, artifacts in "
        + os.path.dirname(paths["report"])
    )

    code = _campaign(workdir, "green", paths["proposed"])
    if code != 0:
        raise AssertionError(
            f"campaign against the proposed baseline exited {code},"
            " expected 0 — the triage delta did not close the novelty"
        )
    print("[analytics-smoke] triage: proposed baseline turns exit 4 -> 0")


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    workdir = args[0] if args else "analytics-smoke"
    os.makedirs(workdir, exist_ok=True)
    try:
        _drift_leg(workdir)
        _triage_leg(workdir)
    except AssertionError as exc:
        print(f"[analytics-smoke] FAIL: {exc}", file=sys.stderr)
        return 1
    print("[analytics-smoke] ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
