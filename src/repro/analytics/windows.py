"""Ledger windows: partition campaign records along commit or time axes.

The ledger deliberately separates the deterministic core of a record
from the volatile ``env`` — but the *analytics* questions a perpetual
ledger exists to answer live exactly on that volatile side: "did this
failure cluster change behaviour **at a commit boundary**?", "what did
last week's runs see that this week's don't?". This module gives those
questions their unit of comparison: a :class:`Window` is a maximal run
of ledger records sharing one ``env.git.commit`` (or one fixed-width
time bucket), in canonical record order so the partition — like the
clustering it feeds — is immune to ledger-line shuffling.

On top of the partition sit two analyses:

* :func:`cluster_windows` re-runs the co-occurrence clustering
  (:func:`repro.obs.cluster.cluster_ledger`) *per window*, and
* :func:`cluster_evolution` compares the per-window clusterings of
  adjacent windows and reports **births** (a cluster whose members were
  never seen before), **deaths** (a cluster that stopped failing),
  **merges** (previously-independent clusters now co-failing — the
  "Systemic Flakiness" signal that two mechanisms share a root cause)
  and **splits** (a cluster that decomposed).

Everything is deterministic for a fixed record *set*: shuffling the
ledger lines changes neither window boundaries nor events (pinned by
tests/analytics/).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.cluster import Cluster, canonical_order, cluster_ledger, record_items

__all__ = [
    "DEFAULT_WINDOW_SECONDS",
    "Window",
    "EvolutionEvent",
    "record_commit",
    "commit_windows",
    "time_windows",
    "partition_ledger",
    "cluster_windows",
    "cluster_evolution",
]

#: default width of a time window: one day, the nightly-campaign cadence
DEFAULT_WINDOW_SECONDS = 86_400.0

#: window label for records whose ``env`` carries no git commit
UNKNOWN_COMMIT = "unknown"


@dataclass(frozen=True)
class Window:
    """One contiguous slice of the (canonically ordered) ledger."""

    #: commit short-hash, or the time bucket's ISO start
    label: str
    #: which axis produced the window: ``"commit"`` or ``"time"``
    kind: str
    #: position in the window sequence, 0-based
    index: int
    records: tuple[dict, ...]

    @property
    def start(self) -> float:
        return min(
            (float(r.get("ts", 0.0)) for r in self.records), default=0.0
        )

    @property
    def end(self) -> float:
        return max(
            (float(r.get("ts", 0.0)) for r in self.records), default=0.0
        )

    def items(self) -> set[str]:
        """Every failure item any record in the window contributes."""
        out: set[str] = set()
        for record in self.records:
            out.update(record_items(record))
        return out

    def item_rate(self, members: tuple[str, ...]) -> float:
        """Fraction of the window's runs in which *any* member failed."""
        if not self.records:
            return 0.0
        wanted = set(members)
        hits = sum(
            1
            for record in self.records
            if wanted.intersection(record_items(record))
        )
        return hits / len(self.records)

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "kind": self.kind,
            "index": self.index,
            "runs": len(self.records),
            "start": self.start,
            "end": self.end,
            "items": len(self.items()),
        }


def record_commit(record: dict) -> str | None:
    """The git commit a record's volatile ``env`` was stamped with."""
    git = record.get("env", {}).get("git")
    if not isinstance(git, dict):
        return None
    commit = git.get("commit")
    return str(commit) if commit else None


def commit_windows(records: list[dict]) -> list[Window]:
    """Partition the ledger by ``env.git.commit``.

    Windows are ordered by each commit's first appearance in canonical
    record order (which tracks ``ts``), so "the window before this one"
    means "the commit the campaign ran at before this one landed".
    Records with no recorded commit share one ``unknown`` window.
    """
    ordered = canonical_order(records)
    grouped: dict[str, list[dict]] = {}
    order: list[str] = []
    for record in ordered:
        commit = record_commit(record) or UNKNOWN_COMMIT
        if commit not in grouped:
            grouped[commit] = []
            order.append(commit)
        grouped[commit].append(record)
    return [
        Window(
            label=label, kind="commit", index=index,
            records=tuple(grouped[label]),
        )
        for index, label in enumerate(order)
    ]


def time_windows(
    records: list[dict], width_seconds: float = DEFAULT_WINDOW_SECONDS
) -> list[Window]:
    """Partition the ledger into fixed-width time buckets.

    Buckets are aligned to multiples of ``width_seconds`` since the
    epoch and labelled by their (UTC) start; empty buckets between two
    populated ones are *not* emitted — a campaign that paused for a
    week compares its last active window against its next one.
    """
    import time as _time

    if width_seconds <= 0:
        raise ValueError(
            f"window width must be > 0 seconds, got {width_seconds}"
        )
    ordered = canonical_order(records)
    grouped: dict[int, list[dict]] = {}
    for record in ordered:
        bucket = int(float(record.get("ts", 0.0)) // width_seconds)
        grouped.setdefault(bucket, []).append(record)
    windows = []
    for index, bucket in enumerate(sorted(grouped)):
        start = bucket * width_seconds
        label = _time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", _time.gmtime(start)
        )
        windows.append(
            Window(
                label=label, kind="time", index=index,
                records=tuple(grouped[bucket]),
            )
        )
    return windows


def partition_ledger(
    records: list[dict],
    *,
    by: str = "commit",
    window_seconds: float = DEFAULT_WINDOW_SECONDS,
) -> list[Window]:
    """Window the ledger along the requested axis."""
    if by == "commit":
        return commit_windows(records)
    if by == "time":
        return time_windows(records, window_seconds)
    raise ValueError(f"unknown window axis {by!r}; expected commit or time")


def cluster_windows(
    windows: list[Window], threshold: float = 0.5
) -> list[list[Cluster]]:
    """Re-cluster each window independently, same order as ``windows``."""
    return [
        cluster_ledger(list(window.records), threshold=threshold)
        for window in windows
    ]


@dataclass(frozen=True)
class EvolutionEvent:
    """One cluster lifecycle event at a window boundary."""

    #: ``birth`` / ``death`` / ``merge`` / ``split``
    kind: str
    #: labels of the (before, after) windows the event straddles
    boundary: tuple[str, str]
    #: the cluster the event is about (after-side for birth/merge,
    #: before-side for death/split), as its sorted member tuple
    cluster: tuple[str, ...]
    #: for merge: the before-side clusters that fused; for split: the
    #: after-side fragments; empty for birth/death
    related: tuple[tuple[str, ...], ...] = ()

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "boundary": list(self.boundary),
            "cluster": list(self.cluster),
            "related": [list(members) for members in self.related],
        }


def cluster_evolution(
    windows: list[Window], threshold: float = 0.5
) -> list[EvolutionEvent]:
    """Births, deaths, merges and splits between adjacent windows.

    Clusters are matched across a boundary by member overlap. An
    after-side cluster overlapping *no* before-side cluster whose
    members were also never seen loose in the before window is a birth;
    one overlapping two or more is a merge. Symmetrically for deaths
    and splits on the before side. Output order is deterministic:
    boundary order, then kind, then member tuple.
    """
    per_window = cluster_windows(windows, threshold)
    events: list[EvolutionEvent] = []
    for index in range(1, len(windows)):
        before_window, after_window = windows[index - 1], windows[index]
        boundary = (before_window.label, after_window.label)
        before = per_window[index - 1]
        after = per_window[index]
        before_items = before_window.items()
        after_items = after_window.items()
        overlaps: dict[int, list[int]] = {}
        reverse: dict[int, list[int]] = {}
        for b_idx, b_cluster in enumerate(before):
            b_members = set(b_cluster.members)
            for a_idx, a_cluster in enumerate(after):
                if b_members.intersection(a_cluster.members):
                    overlaps.setdefault(a_idx, []).append(b_idx)
                    reverse.setdefault(b_idx, []).append(a_idx)
        bucket: list[EvolutionEvent] = []
        for a_idx, a_cluster in enumerate(after):
            parents = overlaps.get(a_idx, [])
            if not parents:
                # only a true birth if nothing in the before window —
                # clustered or not — ever witnessed any member
                if not before_items.intersection(a_cluster.members):
                    bucket.append(
                        EvolutionEvent("birth", boundary, a_cluster.members)
                    )
            elif len(parents) > 1:
                bucket.append(
                    EvolutionEvent(
                        "merge",
                        boundary,
                        a_cluster.members,
                        tuple(before[p].members for p in sorted(parents)),
                    )
                )
        for b_idx, b_cluster in enumerate(before):
            children = reverse.get(b_idx, [])
            if not children:
                if not after_items.intersection(b_cluster.members):
                    bucket.append(
                        EvolutionEvent("death", boundary, b_cluster.members)
                    )
            elif len(children) > 1:
                bucket.append(
                    EvolutionEvent(
                        "split",
                        boundary,
                        b_cluster.members,
                        tuple(after[c].members for c in sorted(children)),
                    )
                )
        bucket.sort(key=lambda event: (event.kind, event.cluster))
        events.extend(bucket)
    return events
